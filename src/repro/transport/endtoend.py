"""End-to-end composition: the data link over a relayed network.

:class:`NetworkRelay` is an :class:`~repro.adversary.Adversary` whose
"malice" is simply physics: each announced packet is handed to a relay
strategy over a failing network, and the copies that survive become
deliveries at the times the relay computed.  Loss (no route), duplication
(flooding's multiple routes) and reordering (different latencies / repair
delays) all arise naturally, so running the ordinary
:class:`~repro.sim.Simulator` with this adversary *is* the transport-layer
deployment of Section 1 — and the Section 2.6 checkers apply unchanged.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.adversary.base import (
    PASS,
    Adversary,
    Move,
    make_deliver,
)
from repro.channel.channel import PacketInfo
from repro.core.events import ChannelId
from repro.transport.network import Network
from repro.transport.routing import RelayStrategy

__all__ = ["NetworkRelay"]


class NetworkRelay(Adversary):
    """Adversary backed by a network simulation.

    Each adversary move advances network time by one tick: link failure
    processes step, due arrivals are delivered (earliest first), and newly
    announced packets are injected into the relay.

    Parameters
    ----------
    network:
        The failing multi-hop topology.
    relay:
        The semi-reliable strategy (flooding or path maintenance) built on
        the same network.
    """

    def __init__(self, network: Network, relay: RelayStrategy) -> None:
        super().__init__()
        if relay.network is not network:
            raise ValueError("relay must be built on the given network")
        self.network = network
        self.relay = relay
        self._now = 0
        self._heap: List[Tuple[int, int, PacketInfo]] = []
        self._tiebreak = 0
        self._pending_injections: List[PacketInfo] = []
        self.delivered_copies = 0
        self.lost_packets = 0

    @property
    def now(self) -> int:
        """Current network time (one tick per adversary move)."""
        return self._now

    def on_new_pkt(self, info: PacketInfo) -> None:
        self._pending_injections.append(info)

    def _decide(self) -> Move:
        self._now += 1
        self.network.tick(self.rng)
        self._inject_pending()
        if self._heap and self._heap[0][0] <= self._now:
            __, __, info = heapq.heappop(self._heap)
            self.delivered_copies += 1
            return make_deliver(info.channel, info.packet_id)
        return PASS

    def _inject_pending(self) -> None:
        for info in self._pending_injections:
            direction = "fwd" if info.channel == ChannelId.T_TO_R else "rev"
            arrivals = self.relay.inject(
                token=info, now=self._now, direction=direction, rng=self.rng
            )
            if not arrivals:
                self.lost_packets += 1
            for arrival in arrivals:
                self._tiebreak += 1
                heapq.heappush(
                    self._heap, (arrival.arrive_at, self._tiebreak, info)
                )
        self._pending_injections.clear()

    def describe(self) -> str:
        return (
            f"network-relay({type(self.relay).__name__}, "
            f"edges={self.network.edge_count})"
        )
