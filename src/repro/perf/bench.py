"""Micro/macro benchmarks for the streaming trace engine.

The harness answers three questions, repeatably:

* **micro** — how fast are the primitives: raw ``Trace.append`` and the
  online :class:`~repro.checkers.StreamingChecks` dispatch, in events/sec;
* **macro** — how fast is the Monte-Carlo campaign path end to end
  (simulate + record + check), in steps/sec and events/sec, under three
  engine modes:

  - ``legacy``       — full trace retention, per-step storage sampling,
    post-hoc batch checkers: the cost model of the pre-streaming engine;
  - ``streaming_full`` — online monitors riding a fully-retained trace
    (today's ``run_once`` default);
  - ``streaming_none`` — online monitors with ``retain="none"``: the
    checker-only campaign configuration;

* **memory** — peak ``tracemalloc`` footprint of one long run per mode;

* **campaign** — end-to-end throughput of the parallel campaign
  supervisor on a many-run lossy campaign of short runs (the regime where
  dispatch overhead rivals simulation), batched sharded dispatch vs
  per-run dispatch (``chunk_size=1``) at the default worker count.  The
  two dispatches are also asserted to produce identical campaign
  fingerprints, so the speedup can never silently come from skipped work;

* **stabilization** — checker overhead of self-stabilizing mode: the
  same corrupting lossy workload is timed with and without the
  convergence monitor (``RunSpec.stabilization``), interleaved run-by-run
  like the macro legs.  The gated ``stabilization_overhead`` ratio
  (monitored steps/sec over plain steps/sec) bounds what the probation
  bookkeeping may cost on the campaign hot path;

* **live** — loopback messages/sec of the live UDP deployment at
  lanes ∈ {1, 4, 8} on a lossless (small fixed delay) profile.  The gated
  ``live_lane_speedup`` ratio (8 lanes vs 1) measures how much of Axiom
  1's stop-and-wait latency the lane striping actually pipelines away on
  a real wire; every leg must deliver its whole workload with clean
  verdicts or the benchmark raises;

* **live_wire** — loopback messages/sec of the isolated wire pump
  (:mod:`repro.live.pump`): identical credit-based 8-lane workloads
  through the classic per-datagram asyncio transports vs the batched
  drain/flush layer.  The gated ``live_wire_speedup`` ratio (batched
  over classic) is the wire-layer win in isolation — the full-scenario
  numbers blend it with protocol cost.  Both modes must deliver every
  message (the pump's credit chain stalls on loss) and the batched leg
  must return its buffer pool to zero outstanding, or the leg raises.

Absolute throughput is machine-dependent, so the regression gate
(:func:`check_regression`) compares only *within-run ratios* — the
streaming-vs-legacy speedup and memory reduction — against the committed
``BENCH_core.json`` baseline.  Those ratios are stable across hosts; a
>25 % drop means the streaming engine lost its advantage, i.e. a real
regression.  :data:`SEED_BASELINE` additionally records the absolute
numbers measured on the pre-streaming tree for the before/after story.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import math
import platform
import statistics
import sys
import tracemalloc
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.adversary.benign import ReliableAdversary
from repro.adversary.corruption import StateCorruptionAdversary
from repro.adversary.random_faults import FaultProfile, RandomFaultAdversary
from repro.checkers.liveness import check_liveness
from repro.checkers.safety import check_all_safety
from repro.checkers.streaming import StreamingChecks
from repro.checkers.trace import Trace
from repro.core.events import (
    OK,
    ChannelId,
    Event,
    PktDelivered,
    PktSent,
    ReceiveMsg,
    SendMsg,
)
from repro.core.protocol import make_data_link
from repro.core.random_source import split_seed
from repro.sim.runner import RunSpec, run_once
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload

__all__ = [
    "SEED_BASELINE",
    "SEED_COMPARISON",
    "MACRO_MODES",
    "run_bench",
    "run_kernel_bench",
    "gate_ratios",
    "check_regression",
    "compare_payloads",
    "hosts_match",
]

#: Absolute numbers measured on the pre-streaming tree (commit ec5718d,
#: the engine this PR replaces), with the same workloads as the "full"
#: macro benchmark.  Methodology: a git worktree of the seed commit and
#: the current tree were benchmarked in alternating subprocesses on the
#: same host (6-run warm-up, then best of three 6-run trials of
#: RunSpec.default(messages=200); medians over three interleaved
#: repetitions), which bounds the host's timing drift to well under the
#: measured gap.  Memory is the peak tracemalloc footprint of one
#: 400-message run.  Kept for the measured before/after table; never used
#: by the regression gate (absolute throughput is machine-dependent).
SEED_BASELINE: Dict[str, Dict[str, float]] = {
    "reliable": {
        "steps_per_second": 87_760.5,
        "events_per_second": 174_975.3,
    },
    "lossy": {
        "steps_per_second": 92_049.6,
        "events_per_second": 139_945.1,
    },
    "memory": {
        "reliable_peak_tracemalloc_bytes_400_messages": 630_109.0,
        "lossy_peak_tracemalloc_bytes_400_messages": 762_549.0,
    },
}

#: The paired "after" numbers from the same interleaved A/B session that
#: produced :data:`SEED_BASELINE` (seed worktree vs this tree, alternating
#: subprocesses, medians of three repetitions).  This is the measured
#: before/after story: the streaming engine with ``retain="none"`` clears
#: 2x steps/sec on both campaign workloads and roughly halves the peak
#: footprint.  Like the baseline, these absolutes are host-specific.
SEED_COMPARISON: Dict[str, Dict[str, float]] = {
    "reliable": {
        "seed_steps_per_second": 87_760.5,
        "streaming_none_steps_per_second": 175_209.8,
        "steps_speedup": 2.00,
        "seed_peak_tracemalloc_bytes": 630_109.0,
        "streaming_none_peak_tracemalloc_bytes": 320_087.0,
        "memory_reduction": 1.97,
    },
    "lossy": {
        "seed_steps_per_second": 92_049.6,
        "streaming_none_steps_per_second": 203_840.0,
        "steps_speedup": 2.21,
        "seed_peak_tracemalloc_bytes": 762_549.0,
        "streaming_none_peak_tracemalloc_bytes": 377_999.0,
        "memory_reduction": 2.02,
    },
}

MACRO_MODES = ("legacy", "streaming_full", "streaming_none")

#: Ratios the regression gate compares against the committed baseline.
_GATE_KEYS = (
    "steps_speedup_reliable",
    "steps_speedup_lossy",
    "memory_reduction_reliable",
    "memory_reduction_lossy",
    "campaign_dispatch_speedup",
    "live_lane_speedup",
    "live_wire_speedup",
    "stabilization_overhead",
    "kernel_steps_speedup",
    "kernel_steps_speedup_lossy",
    "relay_hop_efficiency",
    "relay_kernel_speedup",
    "relay_stripe_speedup",
)

#: Absolute floors, enforced whenever the key is present in the current
#: run — independent of any baseline.  Unlike the baseline-relative
#: checks these survive host mismatches: the step kernel must clear 5x
#: over the object engine on the reliable campaign shape (3x on the
#: lossy one) wherever the bench runs, or the kernel has lost the
#: advantage that justifies maintaining two engines.
_GATE_FLOORS = {
    "kernel_steps_speedup": 5.0,
    "kernel_steps_speedup_lossy": 3.0,
    # The fabric's kernel hop engine must clear 4x over the object
    # engine on the bench line (same spec, same seed, bit-identical
    # trace) or the flat-state executor has lost its reason to exist.
    "relay_kernel_speedup": 4.0,
    # Two vertex-disjoint paths must shave at least a third off the
    # protocol time of the single-path ring (ticks are deterministic,
    # so this floor is host-independent).
    "relay_stripe_speedup": 1.5,
}

#: Per-key overrides of :func:`check_regression`'s default threshold.
#: The live legs time real kernel round trips on a shared host's
#: loopback, so their run-to-run variance is far above the simulator
#: ratios'; the wider tolerance still keeps the committed ~5x lane
#: baseline gated above the 2.5x target and the ~2x wire baseline
#: gated above parity.
_GATE_THRESHOLDS = {
    "live_lane_speedup": 0.5,
    "live_wire_speedup": 0.5,
    # The relay legs time whole end-to-end fabric runs (hundreds of
    # per-link simulations each); their run-to-run variance is closer
    # to the live legs' than the simulator ratios'.  relay_stripe_speedup
    # needs no override: it is a deterministic tick ratio.
    "relay_hop_efficiency": 0.5,
    "relay_kernel_speedup": 0.5,
}


def _reliable_spec(messages: int) -> RunSpec:
    return RunSpec.default(messages=messages, label="reliable")


def _lossy_spec(messages: int) -> RunSpec:
    spec = RunSpec.default(messages=messages, label="lossy")
    spec.adversary_factory = lambda: RandomFaultAdversary(FaultProfile(loss=0.2))
    spec.max_steps = 400_000
    return spec


def _legacy_run(spec: RunSpec, seed: int):
    """One run under the pre-streaming cost model.

    Mirrors what ``run_once`` did before the streaming engine: record a
    full trace with per-step storage sampling and no online monitors, then
    evaluate safety and liveness post-hoc over the finished trace.
    """
    link = spec.link_factory(split_seed(seed, "link"))
    adversary = spec.adversary_factory()
    workload = spec.workload_factory(split_seed(seed, "workload"))
    simulator = Simulator(
        link=link,
        adversary=adversary,
        workload=workload,
        seed=split_seed(seed, "adversary"),
        retry_every=spec.retry_every,
        max_steps=spec.max_steps,
        enforce_fairness=spec.enforce_fairness,
        fairness_patience=spec.fairness_patience,
        retain="full",
        storage_sample_every=1,
        keep_storage_samples=True,
    )
    result = simulator.run()
    safety = check_all_safety(result.trace)
    liveness = check_liveness(result.trace, run_completed=result.completed)
    if not (safety.passed and liveness.passed):
        raise RuntimeError(f"benchmark run violated a condition: {result.trace}")
    return result


def _mode_runner(spec: RunSpec, mode: str) -> Callable[[int], "object"]:
    """Returns seed -> SimulationResult for one engine mode."""
    if mode == "legacy":
        return lambda seed: _legacy_run(spec, seed)
    retain = "none" if mode == "streaming_none" else "full"
    streaming_spec = dataclasses.replace(spec, retain=retain)
    return lambda seed: run_once(streaming_spec, seed).result


def _bench_macro_workload(
    spec: RunSpec, runs: int, base_seed: int
) -> Dict[str, Dict[str, float]]:
    """Benchmark every engine mode over one workload, interleaved.

    The modes take turns run-by-run (legacy run 0, streaming run 0, …,
    legacy run 1, …) rather than as back-to-back blocks, so slow drift in
    the host's clock speed hits every mode about equally and the gated
    *ratios* stay meaningful even on a noisy machine.  One untimed
    warm-up run per mode pays the import/JIT-warming cost up front.
    """
    runners = {mode: _mode_runner(spec, mode) for mode in MACRO_MODES}
    totals = {
        mode: {"wall_seconds": 0.0, "steps": 0, "events": 0, "checker_seconds": 0.0}
        for mode in MACRO_MODES
    }
    for runner in runners.values():
        runner(split_seed(base_seed, "bench-warmup"))
    for i in range(runs):
        seed = split_seed(base_seed, "bench", i)
        for mode, runner in runners.items():
            started = perf_counter()
            result = runner(seed)
            wall = perf_counter() - started
            bucket = totals[mode]
            bucket["wall_seconds"] += wall
            bucket["steps"] += result.steps
            bucket["events"] += result.trace.total_events
            bucket["checker_seconds"] += result.metrics.checker_seconds
    stats: Dict[str, Dict[str, float]] = {}
    for mode, bucket in totals.items():
        wall = bucket["wall_seconds"]
        stats[mode] = {
            "runs": runs,
            "wall_seconds": wall,
            "steps": bucket["steps"],
            "events": bucket["events"],
            "steps_per_second": bucket["steps"] / wall if wall > 0 else 0.0,
            "events_per_second": bucket["events"] / wall if wall > 0 else 0.0,
            "checker_overhead_ratio": (
                bucket["checker_seconds"] / wall if wall > 0 else 0.0
            ),
        }
    return stats


def _bench_memory_mode(spec: RunSpec, mode: str, base_seed: int) -> int:
    """Peak tracemalloc footprint (bytes) of one run under ``mode``."""
    runner = _mode_runner(spec, mode)
    seed = split_seed(base_seed, "bench-mem")
    tracemalloc.start()
    try:
        runner(seed)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def _kernel_leg_run(engine: str, lossy: bool, messages: int, seed: int):
    """One engine-throughput run: direct simulator, no checkers, no trace.

    The kernel leg measures the *execution engines* against each other, so
    both sides run the bare campaign configuration (``retain="none"``,
    ``checks=None``) — the same observable outputs (metrics, verdict-free
    counters, final station state), none of the shared recording overhead
    that would dilute the ratio equally on both sides.
    """
    adversary = (
        RandomFaultAdversary(FaultProfile(loss=0.2))
        if lossy
        else ReliableAdversary()
    )
    simulator = Simulator(
        link=make_data_link(epsilon=2.0 ** -8, seed=split_seed(seed, "link")),
        adversary=adversary,
        workload=SequentialWorkload(messages),
        seed=split_seed(seed, "adversary"),
        max_steps=400_000,
        retain="none",
        checks=None,
        engine=engine,
    )
    started = perf_counter()
    result = simulator.run()
    return perf_counter() - started, result.steps


def _bench_kernel(
    messages: int, pairs: int, base_seed: int
) -> Dict[str, Dict[str, float]]:
    """Step-kernel speedup over the object engine, paired run by run.

    Every seed is executed back-to-back on both engines (object first,
    kernel second) and contributes one wall-clock ratio; the recorded
    speedup is the *median* of the per-pair ratios, which is robust to
    the occasional run that a noisy host slows several-fold.  Collection
    is paused around the timed pairs so a GC cycle cannot land inside
    one engine's window but not the other's.  Both engines must execute
    the identical number of steps per seed — a kernel that diverged from
    the object engine would invalidate the comparison, so it raises.
    """
    stats: Dict[str, Dict[str, float]] = {}
    for lossy in (False, True):
        label = "lossy" if lossy else "reliable"
        warm_seed = split_seed(base_seed, "bench-kernel-warmup", label)
        _kernel_leg_run("object", lossy, messages, warm_seed)
        _kernel_leg_run("kernel", lossy, messages, warm_seed)
        ratios: List[float] = []
        object_wall = 0.0
        kernel_wall = 0.0
        total_steps = 0
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for i in range(pairs):
                seed = split_seed(base_seed, "bench-kernel", label, i)
                wall_o, steps_o = _kernel_leg_run("object", lossy, messages, seed)
                wall_k, steps_k = _kernel_leg_run("kernel", lossy, messages, seed)
                if steps_o != steps_k:
                    raise RuntimeError(
                        f"kernel bench {label} pair {i}: engines diverged "
                        f"({steps_o} vs {steps_k} steps)"
                    )
                object_wall += wall_o
                kernel_wall += wall_k
                total_steps += steps_k
                ratios.append(wall_o / wall_k if wall_k > 0 else 0.0)
        finally:
            if gc_was_enabled:
                gc.enable()
        stats[label] = {
            "pairs": pairs,
            "messages": messages,
            "steps": total_steps,
            "object_wall_seconds": object_wall,
            "kernel_wall_seconds": kernel_wall,
            "object_steps_per_second": (
                total_steps / object_wall if object_wall > 0 else 0.0
            ),
            "kernel_steps_per_second": (
                total_steps / kernel_wall if kernel_wall > 0 else 0.0
            ),
            "pair_ratios": [round(r, 3) for r in ratios],
            "steps_speedup_median": statistics.median(ratios),
        }
    return stats


#: Wall-clock repetitions per campaign dispatch mode; best-of is recorded.
_CAMPAIGN_REPEATS = 3


def _campaign_spec() -> RunSpec:
    """Short lossy runs: the regime where per-run dispatch overhead bites.

    One message under 20% loss keeps each run around a dozen steps, so the
    measured difference between the two dispatch modes is almost entirely
    dispatch cost rather than simulation time.
    """
    spec = RunSpec.default(messages=1, label="campaign-lossy")
    spec.adversary_factory = lambda: RandomFaultAdversary(FaultProfile(loss=0.2))
    spec.retain = "none"
    spec.max_steps = 50_000
    return spec


def _bench_campaign(runs: int, base_seed: int) -> Dict[str, Dict[str, float]]:
    """Batched sharded dispatch vs per-run dispatch, same campaign.

    Both configurations run the identical ``runs``-run lossy campaign with
    the same worker count; only the shard size differs (``chunk_size=1``
    reproduces the old one-pool-task-per-run engine).  Every campaign
    fingerprint — across both dispatch modes and all repetitions — must
    match exactly: a dispatch path that changed any verdict or seed would
    invalidate the comparison, so it raises instead.  Each leg is measured
    ``_CAMPAIGN_REPEATS`` times and the best wall clock kept (the usual
    timeit discipline: the minimum is the run least disturbed by the rest
    of the machine).
    """
    from repro.resilience.supervisor import CampaignConfig, run_campaign

    spec = _campaign_spec()
    seed = split_seed(base_seed, "bench-campaign")
    # Default worker count (one): a single worker isolates dispatch
    # amortization — the thing sharding changes — from parallel scaling,
    # which varies with host core count and would drown the gated ratio in
    # machine-shape noise.
    configs = {
        "per_run": CampaignConfig(chunk_size=1),
        "batched": CampaignConfig(),
    }
    stats: Dict[str, Dict[str, float]] = {}
    fingerprints: Dict[str, tuple] = {}
    for name, config in configs.items():
        wall = math.inf
        total_steps = 0
        for _ in range(_CAMPAIGN_REPEATS):
            started = perf_counter()
            result = run_campaign(spec, runs, base_seed=seed, config=config)
            wall = min(wall, perf_counter() - started)
            fingerprint = result.fingerprint()
            if fingerprints.setdefault(name, fingerprint) != fingerprint:
                raise RuntimeError(
                    f"{name} campaign dispatch is not deterministic across "
                    "repetitions"
                )
            total_steps = sum(r.steps for r in result.reports)
        stats[name] = {
            "runs": runs,
            "jobs": config.jobs,
            "chunk_size": config.resolve_chunk_size(runs),
            "wall_seconds": wall,
            "steps": total_steps,
            "steps_per_second": total_steps / wall if wall > 0 else 0.0,
            "runs_per_second": runs / wall if wall > 0 else 0.0,
        }
    if fingerprints["per_run"] != fingerprints["batched"]:
        raise RuntimeError(
            "batched campaign dispatch diverged from per-run dispatch: "
            "identical fingerprints are a precondition of the comparison"
        )
    return stats


def _stabilization_spec(messages: int) -> RunSpec:
    """Lossy workload with random in-place state corruption.

    The corruption rate is tuned so every bench run scrambles at least one
    station a few times: the monitored leg then exercises the full
    probation/scrub path (episode open, mark, streak, converge) rather
    than idling, which is the cost the gated ratio exists to bound.
    """
    spec = RunSpec.default(messages=messages, label="stabilization")
    spec.adversary_factory = lambda: StateCorruptionAdversary(
        rate_t=0.005,
        rate_r=0.005,
        inner=RandomFaultAdversary(FaultProfile(loss=0.1)),
    )
    spec.retain = "none"
    spec.max_steps = 400_000
    return spec


def _bench_stabilization(
    messages: int, runs: int, base_seed: int
) -> Dict[str, Dict[str, float]]:
    """Same corrupting workload, with and without the convergence monitor.

    The two variants take turns run-by-run (like the macro legs) so host
    clock drift cancels out of the gated ratio.  The corrupting adversary
    is seed-pinned, so both variants simulate the identical run — the only
    difference is whether :class:`StabilizationMonitor` rides the stream.
    The leg refuses to report a ratio measured on a corruption-free
    workload: that would gate nothing.
    """
    base = _stabilization_spec(messages)
    variants = {
        "plain": dataclasses.replace(base, stabilization=False),
        "monitored": dataclasses.replace(base, stabilization=True),
    }
    totals = {
        name: {"wall_seconds": 0.0, "steps": 0, "events": 0, "corruptions": 0}
        for name in variants
    }
    for spec in variants.values():
        run_once(spec, split_seed(base_seed, "bench-stab-warmup"))
    for i in range(runs):
        seed = split_seed(base_seed, "bench-stab", i)
        for name, spec in variants.items():
            started = perf_counter()
            outcome = run_once(spec, seed)
            wall = perf_counter() - started
            result = outcome.result
            bucket = totals[name]
            bucket["wall_seconds"] += wall
            bucket["steps"] += result.steps
            bucket["events"] += result.trace.total_events
            bucket["corruptions"] += (
                result.metrics.corruptions_t + result.metrics.corruptions_r
            )
    if totals["monitored"]["corruptions"] == 0:
        raise RuntimeError(
            "stabilization bench injected no corruptions; the overhead "
            "ratio would be measured on an idle monitor"
        )
    stats: Dict[str, Dict[str, float]] = {}
    for name, bucket in totals.items():
        wall = bucket["wall_seconds"]
        stats[name] = {
            "runs": runs,
            "wall_seconds": wall,
            "steps": bucket["steps"],
            "events": bucket["events"],
            "corruptions": bucket["corruptions"],
            "steps_per_second": bucket["steps"] / wall if wall > 0 else 0.0,
            "events_per_second": bucket["events"] / wall if wall > 0 else 0.0,
        }
    return stats


#: Lane counts the live leg measures (1 is the stop-and-wait baseline).
_LIVE_LANES = (1, 4, 8)

#: Wall-clock repetitions per live lane count; best-of is recorded.
_LIVE_REPEATS = 2


def _bench_live(messages: int, base_seed: int) -> Dict[str, Dict[str, float]]:
    """Loopback messages/sec of the live deployment per lane count.

    Lossless profile with a small fixed one-way delay, so throughput is
    dominated by the per-message handshake latency Axiom 1 serializes —
    the thing lane striping exists to pipeline.  A fast, tightly jittered
    poll schedule keeps the RM's ack latency (rather than its poll timer)
    on the critical path.  Each leg must deliver its entire workload with
    clean Section 2.6 verdicts; a bench that silently dropped messages
    would make the throughput numbers meaningless, so it raises instead.
    """
    from repro.live import BackoffPolicy, LinkProfile, LiveScenario
    from repro.live.scenario import run_live_scenario

    poll = BackoffPolicy(base=0.004, factor=2.0, cap=0.05, jitter=0.25)
    profile = LinkProfile(delay=0.002)
    stats: Dict[str, Dict[str, float]] = {}
    for lanes in _LIVE_LANES:
        best_mps = 0.0
        wall = math.inf
        high_water = 0
        for __ in range(_LIVE_REPEATS):
            scenario = LiveScenario(
                messages=messages,
                seed=split_seed(base_seed, "bench-live", lanes),
                profile=profile,
                poll=poll,
                budget=45.0,
                lanes=lanes,
                label=f"bench-live-{lanes}",
            )
            report = run_live_scenario(scenario)
            if not report.ok:
                raise RuntimeError(
                    f"live bench leg lanes={lanes} failed: {report.reason}"
                )
            wall = min(wall, report.wall_seconds)
            best_mps = max(best_mps, messages / report.wall_seconds)
            high_water = max(high_water, report.resequencer_high_water)
        stats[f"lanes_{lanes}"] = {
            "lanes": lanes,
            "messages": messages,
            "wall_seconds": wall,
            "messages_per_second": best_mps,
            "resequencer_high_water": high_water,
        }
    return stats


#: Wire modes the pump leg compares (classic is the PR-4/PR-5 baseline).
_WIRE_MODES = ("classic", "batched")

#: Interleaved wall-clock repetitions per wire mode; best-of is recorded
#: (the loopback pump is at the mercy of the rest of the machine, and the
#: run least disturbed by it is the one that measures the wire).
_WIRE_REPEATS = 3


def _bench_live_wire(
    messages: int, lanes: int = 8
) -> Dict[str, Dict[str, float]]:
    """Classic vs batched wire throughput on the isolated loopback pump.

    Both modes pump the identical credit-based workload (same frames,
    same topology, same window); the modes take turns repetition by
    repetition so host drift hits both about equally, and each mode
    keeps its best run.  The pump's credit chain stalls (and times out)
    if any datagram is lost, so a completed run *is* the delivery proof;
    the batched leg additionally must hand every pool buffer back.
    """
    from repro.live.pump import run_wire_pump

    totals = {
        wire: {"best_mps": 0.0, "wall_seconds": math.inf, "reps": []}
        for wire in _WIRE_MODES
    }
    mmsg = False
    warmup = max(200, messages // 10)
    for wire in _WIRE_MODES:
        run_wire_pump(wire=wire, messages=warmup, lanes=lanes)
    for _ in range(_WIRE_REPEATS):
        for wire in _WIRE_MODES:
            gc.collect()
            report = run_wire_pump(wire=wire, messages=messages, lanes=lanes)
            bucket = totals[wire]
            mps = report.messages_per_second
            bucket["reps"].append(round(mps, 1))
            bucket["best_mps"] = max(bucket["best_mps"], mps)
            bucket["wall_seconds"] = min(
                bucket["wall_seconds"], report.wall_seconds
            )
            if wire == "batched":
                mmsg = mmsg or (report.wire_stats is not None
                                and report.wire_stats.mmsg)
                if report.pool_outstanding:
                    raise RuntimeError(
                        "batched wire pump leaked "
                        f"{report.pool_outstanding} pool buffers"
                    )
    stats: Dict[str, Dict[str, float]] = {}
    for wire, bucket in totals.items():
        entry = {
            "messages": messages,
            "lanes": lanes,
            "wall_seconds": bucket["wall_seconds"],
            "messages_per_second": bucket["best_mps"],
            "rep_messages_per_second": bucket["reps"],
        }
        if wire == "batched":
            entry["mmsg"] = mmsg
        stats[wire] = entry
    return stats


def _synthetic_events(count: int) -> List[Event]:
    """A protocol-shaped event mix: one handshake per message, no faults."""
    events: List[Event] = []
    message_index = 0
    while len(events) < count:
        message = message_index.to_bytes(4, "big")
        message_index += 1
        events.append(SendMsg(message=message))
        events.append(
            PktSent(channel=ChannelId.T_TO_R, packet_id=message_index, length_bits=256)
        )
        events.append(PktDelivered(channel=ChannelId.T_TO_R, packet_id=message_index))
        events.append(ReceiveMsg(message=message))
        events.append(
            PktSent(channel=ChannelId.R_TO_T, packet_id=message_index, length_bits=128)
        )
        events.append(PktDelivered(channel=ChannelId.R_TO_T, packet_id=message_index))
        events.append(OK)
    return events[:count]


_RELAY_REPEATS = 3


def _bench_relay(messages: int, base_seed: int) -> Dict[str, Dict[str, float]]:
    """End-to-end relay fabric throughput: 4-hop line vs single hop.

    Both legs push the same message stream through the same end-to-end
    layer at the same seed; only the hop count differs.  The gated ratio
    is *per-hop efficiency* — 4-hop messages/sec scaled by the hop count,
    over 1-hop messages/sec.  1.0 would mean relaying is free (each hop
    runs a full TM/RM instance, so the 4-hop line does 4x the per-link
    work); the committed baseline bounds how far below free the fabric's
    store-and-forward overhead may drift.  Best-of-``_RELAY_REPEATS``
    wall clock per leg, construction excluded (timeit discipline).
    """
    from repro.transport.fabric import FabricRun, FabricSpec

    seed = split_seed(base_seed, "bench-relay")
    stats: Dict[str, Dict[str, float]] = {}
    for name, hops in (("line_1", 1), ("line_4", 4)):
        spec = FabricSpec(
            topology="line", size=hops, messages=messages, label=name
        )
        wall = math.inf
        ticks = 0
        for _ in range(_RELAY_REPEATS):
            run = FabricRun(spec, (), seed)
            started = perf_counter()
            outcome = run.run()
            wall = min(wall, perf_counter() - started)
            if not outcome.result.completed:
                raise RuntimeError(
                    f"relay bench leg {name} failed to deliver its stream "
                    f"within {spec.max_ticks} ticks"
                )
            ticks = run.ticks
        stats[name] = {
            "hops": hops,
            "messages": messages,
            "ticks": ticks,
            "wall_seconds": wall,
            "messages_per_second": messages / wall if wall > 0 else 0.0,
        }
    return stats


_RELAY_KERNEL_PAIRS = 5


def _relay_kernel_leg_run(engine: str, messages: int, seed: int):
    from repro.transport.fabric import FabricRun, FabricSpec

    spec = FabricSpec(
        topology="line",
        size=4,
        messages=messages,
        window=32,
        steps_per_tick=64,
        engine=engine,
        label=f"bench_{engine}",
    )
    run = FabricRun(spec, (), seed)
    started = perf_counter()
    outcome = run.run()
    wall = perf_counter() - started
    if not outcome.result.completed:
        raise RuntimeError(
            f"relay kernel bench ({engine} engine) failed to deliver "
            f"its stream within {spec.max_ticks} ticks"
        )
    return wall, run.ticks


def _bench_relay_kernel(messages: int, base_seed: int) -> Dict[str, Dict[str, float]]:
    """Kernel-engine fabric hops vs the object engine on a 4-hop line.

    Both engines run the identical spec at the identical seed (the
    differential suite proves they produce bit-identical traces), so the
    wall-clock ratio isolates pure executor overhead: per-step attribute
    dispatch through the object graph vs the hop kernel's flat-local
    burst loop with idle fast-forward.  The wide window and high
    ``steps_per_tick`` keep the run engine-dominated rather than
    fabric-dispatch-dominated.  Measurement follows :func:`_bench_kernel`
    discipline: a warmup pair, collection paused around the timed pairs
    (a GC cycle landing inside the short kernel window but not the long
    object one would wreck the ratio), each seed run back-to-back on
    both engines, and the recorded speedup is the *median* of the
    per-pair ratios — robust to the occasional run a noisy host slows
    several-fold, where a best-of-walls quotient is not.
    """
    warm_seed = split_seed(base_seed, "bench-relay-kernel-warmup")
    _relay_kernel_leg_run("object", messages, warm_seed)
    _relay_kernel_leg_run("kernel", messages, warm_seed)
    ratios: List[float] = []
    walls = {"object": 0.0, "kernel": 0.0}
    ticks = {"object": 0, "kernel": 0}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for i in range(_RELAY_KERNEL_PAIRS):
            seed = split_seed(base_seed, "bench-relay-kernel", i)
            wall_o, ticks_o = _relay_kernel_leg_run("object", messages, seed)
            wall_k, ticks_k = _relay_kernel_leg_run("kernel", messages, seed)
            if ticks_o != ticks_k:
                raise RuntimeError(
                    f"relay kernel bench pair {i}: engines diverged "
                    f"({ticks_o} vs {ticks_k} ticks)"
                )
            walls["object"] += wall_o
            walls["kernel"] += wall_k
            ticks["object"] = ticks_o
            ticks["kernel"] = ticks_k
            ratios.append(wall_o / wall_k if wall_k > 0 else 0.0)
    finally:
        if gc_was_enabled:
            gc.enable()
    median = statistics.median(ratios)
    stats: Dict[str, Dict[str, float]] = {}
    for engine in ("object", "kernel"):
        total = messages * _RELAY_KERNEL_PAIRS
        stats[engine] = {
            "hops": 4,
            "messages": messages,
            "pairs": _RELAY_KERNEL_PAIRS,
            "ticks": ticks[engine],
            "wall_seconds": walls[engine],
            "messages_per_second": (
                total / walls[engine] if walls[engine] > 0 else 0.0
            ),
        }
    stats["kernel"]["speedup_median"] = median
    return stats


def _bench_relay_stripe(messages: int, base_seed: int) -> Dict[str, Dict[str, float]]:
    """Multi-path striping throughput on a ring: 2 disjoint paths vs 1.

    The gated ratio is *protocol time* — fabric ticks to stream
    completion with one path over ticks with two vertex-disjoint paths —
    not wall clock.  Striping halves the per-path frame load, so the
    window drains in fewer protocol rounds (the quantity Bunn–Ostrovsky
    style multi-path arguments bound); wall clock would conflate that
    with host scheduling of the extra busy links, which do the same
    total engine work either way.  Tick counts are fully deterministic
    per seed, so the ratio is exactly reproducible across hosts.
    """
    from repro.transport.fabric import FabricRun, FabricSpec

    seed = split_seed(base_seed, "bench-relay-stripe")
    stats: Dict[str, Dict[str, float]] = {}
    for paths in (1, 2):
        spec = FabricSpec(
            topology="ring",
            size=8,
            messages=messages,
            window=16,
            steps_per_tick=4,
            engine="kernel",
            paths=paths,
            label=f"bench_stripe_{paths}",
        )
        wall = math.inf
        ticks = 0
        for _ in range(_RELAY_REPEATS):
            run = FabricRun(spec, (), seed)
            started = perf_counter()
            outcome = run.run()
            wall = min(wall, perf_counter() - started)
            if not outcome.result.completed:
                raise RuntimeError(
                    f"relay stripe bench ({paths}-path) failed to deliver "
                    f"its stream within {spec.max_ticks} ticks"
                )
            ticks = run.ticks
        stats[f"paths_{paths}"] = {
            "paths": paths,
            "messages": messages,
            "ticks": ticks,
            "wall_seconds": wall,
            "messages_per_second": messages / wall if wall > 0 else 0.0,
        }
    return stats


def _bench_trace_append(events: List[Event]) -> Dict[str, float]:
    started = perf_counter()
    trace = Trace()
    append = trace.append
    for event in events:
        append(event)
    wall = perf_counter() - started
    return {
        "events": len(events),
        "wall_seconds": wall,
        "events_per_second": len(events) / wall if wall > 0 else 0.0,
    }


def _bench_streaming_checks(events: List[Event]) -> Dict[str, float]:
    checks = StreamingChecks()
    observe = checks.observe
    started = perf_counter()
    for index, event in enumerate(events):
        observe(index, event)
    wall = perf_counter() - started
    if not checks.safety_report().passed:
        raise RuntimeError("synthetic benchmark stream violated a condition")
    return {
        "events": len(events),
        "wall_seconds": wall,
        "events_per_second": len(events) / wall if wall > 0 else 0.0,
    }


def gate_ratios(results: dict) -> Dict[str, float]:
    """The machine-independent ratios the regression gate compares."""
    macro = results.get("macro") or {}
    memory = results.get("memory") or {}
    ratios: Dict[str, float] = {}
    for workload in ("reliable", "lossy"):
        if workload in macro:
            legacy = macro[workload]["legacy"]
            fast = macro[workload]["streaming_none"]
            if legacy["steps_per_second"] > 0:
                ratios[f"steps_speedup_{workload}"] = (
                    fast["steps_per_second"] / legacy["steps_per_second"]
                )
        if workload in memory and memory[workload]["streaming_none"] > 0:
            ratios[f"memory_reduction_{workload}"] = (
                memory[workload]["legacy"] / memory[workload]["streaming_none"]
            )
    campaign = results.get("campaign")
    if campaign and campaign["per_run"]["steps_per_second"] > 0:
        ratios["campaign_dispatch_speedup"] = (
            campaign["batched"]["steps_per_second"]
            / campaign["per_run"]["steps_per_second"]
        )
    live = results.get("live")
    if live and live["lanes_1"]["messages_per_second"] > 0:
        ratios["live_lane_speedup"] = (
            live["lanes_8"]["messages_per_second"]
            / live["lanes_1"]["messages_per_second"]
        )
    live_wire = results.get("live_wire")
    if live_wire and live_wire["classic"]["messages_per_second"] > 0:
        ratios["live_wire_speedup"] = (
            live_wire["batched"]["messages_per_second"]
            / live_wire["classic"]["messages_per_second"]
        )
    stabilization = results.get("stabilization")
    if stabilization and stabilization["plain"]["steps_per_second"] > 0:
        ratios["stabilization_overhead"] = (
            stabilization["monitored"]["steps_per_second"]
            / stabilization["plain"]["steps_per_second"]
        )
    kernel = results.get("kernel")
    if kernel:
        ratios["kernel_steps_speedup"] = kernel["reliable"][
            "steps_speedup_median"
        ]
        ratios["kernel_steps_speedup_lossy"] = kernel["lossy"][
            "steps_speedup_median"
        ]
    relay = results.get("relay")
    if relay and relay["line_1"]["messages_per_second"] > 0:
        ratios["relay_hop_efficiency"] = (
            relay["line_4"]["messages_per_second"]
            * relay["line_4"]["hops"]
            / relay["line_1"]["messages_per_second"]
        )
    relay_kernel = results.get("relay_kernel")
    if relay_kernel and "speedup_median" in relay_kernel.get("kernel", {}):
        ratios["relay_kernel_speedup"] = relay_kernel["kernel"][
            "speedup_median"
        ]
    relay_stripe = results.get("relay_stripe")
    if relay_stripe and relay_stripe["paths_2"]["ticks"] > 0:
        # Protocol-time ratio (deterministic per seed) — see
        # _bench_relay_stripe for why ticks, not wall clock.
        ratios["relay_stripe_speedup"] = (
            relay_stripe["paths_1"]["ticks"]
            / relay_stripe["paths_2"]["ticks"]
        )
    return ratios


def run_bench(quick: bool = False, base_seed: int = 0) -> dict:
    """Run the full benchmark matrix; returns the BENCH_core.json payload.

    ``quick=True`` shrinks workloads and run counts for CI smoke (the
    gated ratios stay meaningful; only their variance grows).
    """
    # The campaign benchmark keeps the same run count in both modes: its
    # gated ratio is not size-invariant (per-run dispatch cost grows with
    # the number of in-flight futures), so quick CI measurements must use
    # the same campaign the committed baseline recorded.  At ~a dozen steps
    # per run the campaign leg costs about a second, well within CI budget.
    campaign_runs = 1024
    if quick:
        messages, runs, micro_events, live_messages = 60, 4, 40_000, 40
        kernel_messages, kernel_pairs = 800, 5
        wire_messages = 2000
        relay_messages = 40
    else:
        messages, runs, micro_events, live_messages = 200, 12, 200_000, 80
        kernel_messages, kernel_pairs = 2000, 8
        wire_messages = 8000
        relay_messages = 120
    memory_messages = messages * 2
    specs = {
        "reliable": _reliable_spec(messages),
        "lossy": _lossy_spec(messages),
    }
    macro: Dict[str, Dict[str, Dict[str, float]]] = {}
    for workload, spec in specs.items():
        macro[workload] = _bench_macro_workload(spec, runs, base_seed)
    memory_specs = {
        "reliable": _reliable_spec(memory_messages),
        "lossy": _lossy_spec(memory_messages),
    }
    memory: Dict[str, Dict[str, int]] = {}
    for workload, spec in memory_specs.items():
        memory[workload] = {
            mode: _bench_memory_mode(spec, mode, base_seed) for mode in MACRO_MODES
        }
    events = _synthetic_events(micro_events)
    micro = {
        "trace_append": _bench_trace_append(events),
        "streaming_checks": _bench_streaming_checks(events),
    }
    campaign = _bench_campaign(campaign_runs, base_seed)
    live = _bench_live(live_messages, base_seed)
    live_wire = _bench_live_wire(wire_messages)
    stabilization = _bench_stabilization(messages, runs, base_seed)
    kernel = _bench_kernel(kernel_messages, kernel_pairs, base_seed)
    relay = _bench_relay(relay_messages, base_seed)
    relay_kernel = _bench_relay_kernel(relay_messages, base_seed)
    relay_stripe = _bench_relay_stripe(relay_messages, base_seed)
    results = {
        "macro": macro,
        "memory": memory,
        "micro": micro,
        "campaign": campaign,
        "live": live,
        "live_wire": live_wire,
        "stabilization": stabilization,
        "kernel": kernel,
        "relay": relay,
        "relay_kernel": relay_kernel,
        "relay_stripe": relay_stripe,
    }
    return {
        "schema": 1,
        "quick": quick,
        "config": {
            "messages": messages,
            "runs": runs,
            "memory_messages": memory_messages,
            "micro_events": micro_events,
            "campaign_runs": campaign_runs,
            "live_messages": live_messages,
            "wire_messages": wire_messages,
            "kernel_messages": kernel_messages,
            "kernel_pairs": kernel_pairs,
            "relay_messages": relay_messages,
            "base_seed": base_seed,
        },
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "seed_baseline": SEED_BASELINE,
        "seed_comparison": SEED_COMPARISON,
        "results": results,
        "ratios": gate_ratios(results),
    }


def run_kernel_bench(quick: bool = False, base_seed: int = 0) -> dict:
    """Run only the step-kernel speedup leg (the CI kernel-differential job).

    Returns a reduced payload with the same shape as :func:`run_bench`
    (``results``/``ratios``/``host``), so :func:`check_regression` and
    the absolute floors apply unchanged.
    """
    if quick:
        kernel_messages, kernel_pairs = 800, 5
    else:
        kernel_messages, kernel_pairs = 2000, 8
    kernel = _bench_kernel(kernel_messages, kernel_pairs, base_seed)
    results = {"kernel": kernel}
    return {
        "schema": 1,
        "quick": quick,
        "config": {
            "kernel_messages": kernel_messages,
            "kernel_pairs": kernel_pairs,
            "base_seed": base_seed,
        },
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "results": results,
        "ratios": gate_ratios(results),
    }


def run_relay_bench(quick: bool = False, base_seed: int = 0) -> dict:
    """Run only the relay fabric legs (the CI fabric-differential job).

    Covers hop efficiency, the kernel-vs-object engine ratio and the
    striping protocol-time ratio; the reduced payload has the same
    shape as :func:`run_bench`, so the absolute floors
    (``relay_kernel_speedup >= 4.0``, ``relay_stripe_speedup >= 1.5``)
    apply unchanged.
    """
    relay_messages = 40 if quick else 120
    results = {
        "relay": _bench_relay(relay_messages, base_seed),
        "relay_kernel": _bench_relay_kernel(relay_messages, base_seed),
        "relay_stripe": _bench_relay_stripe(relay_messages, base_seed),
    }
    return {
        "schema": 1,
        "quick": quick,
        "config": {
            "relay_messages": relay_messages,
            "base_seed": base_seed,
        },
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "results": results,
        "ratios": gate_ratios(results),
    }


def _relative_failures(
    current: dict, baseline: dict, threshold: float
) -> List[str]:
    """Baseline-relative shortfalls: ratios that dropped past threshold."""
    failures: List[str] = []
    baseline_ratios = baseline.get("ratios", {})
    current_ratios = current.get("ratios", {})
    for key in _GATE_KEYS:
        expected = baseline_ratios.get(key)
        if expected is None:
            continue
        actual = current_ratios.get(key)
        if actual is None:
            failures.append(f"{key}: missing from current results")
            continue
        key_threshold = max(threshold, _GATE_THRESHOLDS.get(key, threshold))
        floor = expected * (1.0 - key_threshold)
        if actual < floor:
            failures.append(
                f"{key}: {actual:.2f} fell below {floor:.2f} "
                f"(baseline {expected:.2f}, threshold {key_threshold:.0%})"
            )
    return failures


def _floor_failures(current: dict) -> List[str]:
    """Absolute-floor shortfalls, baseline-independent (see _GATE_FLOORS)."""
    failures: List[str] = []
    current_ratios = current.get("ratios", {})
    for key, floor in _GATE_FLOORS.items():
        actual = current_ratios.get(key)
        if actual is not None and actual < floor:
            failures.append(
                f"{key}: {actual:.2f} fell below absolute floor {floor:.2f}"
            )
    return failures


def hosts_match(current: dict, baseline: dict) -> bool:
    """Whether two payloads were measured on the same platform.

    Gated ratios are engine-vs-engine comparisons within one host, but
    they still shift between CPU generations and interpreter builds; a
    baseline recorded elsewhere bounds a different machine's behavior.
    """
    return current.get("host") == baseline.get("host")


def check_regression(
    current: dict, baseline: dict, threshold: float = 0.25
) -> List[str]:
    """Compare gated ratios against a baseline payload.

    Returns a list of human-readable failures; empty means the gate
    passes.  A ratio regresses when it falls more than ``threshold``
    below the baseline's value; keys in :data:`_GATE_THRESHOLDS` use
    their own (wider) tolerance — but never a tighter one than the
    caller asked for.  Ratios absent from the baseline are skipped
    (forward compatibility), ratios absent from the current run are
    failures.  Ratios listed in :data:`_GATE_FLOORS` must additionally
    clear their absolute floor whenever the current run measured them.

    Host identity is deliberately ignored here — use
    :func:`compare_payloads` for the mismatch-aware verdict.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    return _relative_failures(current, baseline, threshold) + _floor_failures(
        current
    )


def compare_payloads(
    current: dict, baseline: dict, threshold: float = 0.25
) -> Tuple[List[str], List[str]]:
    """Host-aware regression verdict: ``(failures, warnings)``.

    On the baseline's own host this is :func:`check_regression` with an
    empty warning list.  When the hosts differ, the baseline-relative
    comparisons are demoted to *warnings* — a ratio recorded on another
    machine is advisory there, not a gate — while the absolute floors of
    :data:`_GATE_FLOORS` keep failing hard: the kernel's required margin
    over the object engine is a property of the code, not of the host
    that recorded the baseline.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    relative = _relative_failures(current, baseline, threshold)
    floors = _floor_failures(current)
    if hosts_match(current, baseline):
        return relative + floors, []
    warnings = [
        "baseline was recorded on a different host "
        f"({baseline.get('host')} vs {current.get('host')}); "
        "baseline-relative ratio checks are advisory here"
    ]
    warnings.extend(relative)
    return floors, warnings


def dump(payload: dict, path: str) -> None:
    """Write a benchmark payload as pretty JSON."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")


def load(path: str) -> dict:
    """Read a benchmark payload written by :func:`dump`."""
    with open(path, "r", encoding="utf-8") as stream:
        return json.load(stream)
