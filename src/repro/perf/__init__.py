"""Performance harness: benchmarks and the BENCH_core.json regression gate."""

from repro.perf.bench import (
    SEED_BASELINE,
    SEED_COMPARISON,
    check_regression,
    gate_ratios,
    run_bench,
)

__all__ = [
    "SEED_BASELINE",
    "SEED_COMPARISON",
    "check_regression",
    "gate_ratios",
    "run_bench",
]
