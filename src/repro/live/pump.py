"""Loopback wire pump: the live stack's datagram path, isolated.

The live scenario's throughput blends wire cost with protocol cost
(automata, streaming checkers, trace recording), so a wire-layer change
drowns in shared pipeline work.  This module pumps real encoded protocol
frames through the real live *topology* — sender station → relay (the
chaos proxy's two-socket seat) → receiver station and back — with the
protocol machinery held constant and minimal for both modes:

* Frames are encoded **once per lane** before the clock starts and
  re-sent verbatim.  That is the protocol's own shape — Axiom 2 says the
  transmitter re-sends the *identical* frame on every retry — and it
  keeps codec cost (identical in both modes, pinned byte-for-byte by the
  codec parity tests) out of a wire measurement.
* The relays peek every frame (``peek_wire_info`` — the Section 2.3
  adversary view the chaos proxy computes per datagram); the stations
  read only the lane byte, which is all the demultiplexer needs to pick
  the reply frame.

Two implementations of the same workload:

* ``wire="classic"`` — the PR-4/PR-5 mechanics: one asyncio
  ``DatagramTransport`` per socket, one ``datagram_received`` callback
  per datagram, per-datagram ``sendto``.
* ``wire="batched"`` — :class:`repro.live.wire.BatchedDatagramIO`:
  drain/flush batches via recvmmsg/sendmmsg, zero-copy forwards at the
  relays, connected sockets (every pump socket has exactly one peer).

``repro.perf.bench`` derives ``live_wire_speedup`` from the two
throughputs; ``examples/live_wire.py`` drives the same pump by hand.

The flow is credit-based like the protocol itself (a station answers
each delivery, so at most ``window`` datagrams per lane are in flight)
— the pump cannot outrun the kernel's socket buffers, and a lost
datagram would stall it, so completing the workload *is* the delivery
check: every message is acknowledged end to end.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.bitstrings import BitString
from repro.core.packets import (
    DataPacket,
    PollPacket,
    PollEncoder,
    encode_packet,
    lane_prefix,
    peek_wire_info,
)
from repro.live.wire import (
    BatchedDatagramIO,
    BufferPool,
    WireStats,
    link_flush_group,
    merge_wire_stats,
)

__all__ = ["PumpReport", "run_wire_pump", "run_wire_pump_async"]

Address = Tuple[str, int]

_LOCAL = "127.0.0.1"

#: Datagrams per mmsg chunk in the pump.  Larger than the live stack's
#: default (32): the pump runs deep self-clocking credit chains, so the
#: kernel queues actually hold this many, and the marshalling arrays
#: still fit in cache (128 measurably regresses).
_PUMP_BATCH = 64


@dataclass
class PumpReport:
    """Outcome of one pump run (all messages delivered, or it timed out)."""

    wire: str
    messages: int
    lanes: int
    window: int
    wall_seconds: float
    wire_stats: Optional[WireStats] = None
    pool_outstanding: int = 0

    @property
    def messages_per_second(self) -> float:
        return self.messages / self.wall_seconds if self.wall_seconds else 0.0


def _fixed_frames(
    lanes: int, payload_bytes: int
) -> Tuple[List[bytes], List[bytes]]:
    """Per-lane wire frames, encoded once (Axiom 2: retries are verbatim).

    Returns ``(data_frames, poll_frames)`` indexed by lane; frame byte 0
    is the lane prefix, so a station can demultiplex without decoding.
    """
    data = DataPacket(
        message=b"\xa5" * payload_bytes,
        rho=BitString.from_int(0x1234_5678, 64),
        tau=BitString.from_int(0x9ABC_DEF0, 64),
    )
    poll = PollPacket(rho=data.rho, tau=data.tau, retry=0)
    poll_enc = PollEncoder()
    data_frames = [lane_prefix(lane) + encode_packet(data)
                   for lane in range(lanes)]
    poll_frames = [lane_prefix(lane) + poll_enc.encode(poll)
                   for lane in range(lanes)]
    return data_frames, poll_frames


async def _pump_classic(
    messages: int, lanes: int, window: int, payload_bytes: int, timeout: float
) -> PumpReport:
    loop = asyncio.get_running_loop()
    done: "asyncio.Future[None]" = loop.create_future()
    sent = [0]
    delivered = [0]
    data_frames, poll_frames = _fixed_frames(lanes, payload_bytes)
    # side -> (destination, outbound transport); filled once sockets exist.
    routes: Dict[str, Tuple[Address, asyncio.DatagramTransport]] = {}

    class Relay(asyncio.DatagramProtocol):
        """The proxy's seat: peek the adversary view, forward unchanged."""

        def __init__(self, side: str) -> None:
            self.side = side

        def datagram_received(self, data: bytes, addr: Address) -> None:
            peek_wire_info(data)
            dest, out = routes[self.side]
            out.sendto(data, dest)

    class Receiver(asyncio.DatagramProtocol):
        def connection_made(self, transport) -> None:
            self.transport = transport

        def datagram_received(self, data: bytes, addr: Address) -> None:
            self.transport.sendto(poll_frames[data[0]], addr)

    class Sender(asyncio.DatagramProtocol):
        def connection_made(self, transport) -> None:
            self.transport = transport

        def datagram_received(self, data: bytes, addr: Address) -> None:
            delivered[0] += 1
            if delivered[0] >= messages:
                if not done.done():
                    done.set_result(None)
                return
            if sent[0] < messages:
                sent[0] += 1
                self.transport.sendto(data_frames[data[0]], addr)

    relay_t, _ = await loop.create_datagram_endpoint(
        lambda: Relay("t"), local_addr=(_LOCAL, 0))
    relay_r, _ = await loop.create_datagram_endpoint(
        lambda: Relay("r"), local_addr=(_LOCAL, 0))
    recv_tr, _ = await loop.create_datagram_endpoint(
        Receiver, local_addr=(_LOCAL, 0))
    send_tr, _ = await loop.create_datagram_endpoint(
        Sender, local_addr=(_LOCAL, 0))
    # Same deep kernel queues both modes get (BatchedDatagramIO sets these
    # in open()): with defaults, the credit burst can overflow a relay's
    # receive queue and the run degrades to a trickle of surviving
    # credits — a loss artifact, not a throughput measurement.
    import socket as _socket
    for tr in (relay_t, relay_r, recv_tr, send_tr):
        sock = tr.get_extra_info("socket")
        try:
            sock.setsockopt(_socket.SOL_SOCKET, _socket.SO_RCVBUF, 1 << 20)
            sock.setsockopt(_socket.SOL_SOCKET, _socket.SO_SNDBUF, 1 << 20)
        except OSError:
            pass
    # Data flows sender → relay_t ⇒ relay_r → receiver; polls come back
    # receiver → relay_r ⇒ relay_t → sender (same seats as ChaosProxy).
    routes["t"] = (recv_tr.get_extra_info("sockname"), relay_r)
    routes["r"] = (send_tr.get_extra_info("sockname"), relay_t)
    relay_in = relay_t.get_extra_info("sockname")

    start = loop.time()
    for lane in range(lanes):
        for _ in range(window):
            if sent[0] < messages:
                sent[0] += 1
                send_tr.sendto(data_frames[lane], relay_in)
    try:
        await asyncio.wait_for(done, timeout)
    finally:
        wall = loop.time() - start
        for tr in (relay_t, relay_r, recv_tr, send_tr):
            tr.close()
    return PumpReport(wire="classic", messages=messages, lanes=lanes,
                      window=window, wall_seconds=wall)


async def _pump_batched(
    messages: int, lanes: int, window: int, payload_bytes: int, timeout: float
) -> PumpReport:
    loop = asyncio.get_running_loop()
    done: "asyncio.Future[None]" = loop.create_future()
    sent = [0]
    delivered = [0]
    data_frames, poll_frames = _fixed_frames(lanes, payload_bytes)
    pool = BufferPool()
    addr: Dict[str, Address] = {}

    def on_relay_t(view: memoryview) -> None:
        peek_wire_info(view)
        relay_r.send(view, addr["receiver"])

    def on_relay_r(view: memoryview) -> None:
        peek_wire_info(view)
        relay_t.send(view, addr["sender"])

    def on_data(view: memoryview) -> None:
        receiver.send(poll_frames[view[0]], addr["relay_r"])

    def on_poll(view: memoryview) -> None:
        delivered[0] += 1
        if delivered[0] >= messages:
            if not done.done():
                done.set_result(None)
            return
        if sent[0] < messages:
            sent[0] += 1
            sender.send(data_frames[view[0]], addr["relay_t"])

    relay_t = BatchedDatagramIO(on_relay_t, pool=pool, batch=_PUMP_BATCH)
    relay_r = BatchedDatagramIO(on_relay_r, pool=pool, batch=_PUMP_BATCH)
    receiver = BatchedDatagramIO(on_data, pool=pool, batch=_PUMP_BATCH)
    sender = BatchedDatagramIO(on_poll, pool=pool, batch=_PUMP_BATCH)
    ios = [relay_t, relay_r, receiver, sender]
    for io in ios:
        await io.open((_LOCAL, 0))
    link_flush_group(ios)
    addr["relay_t"] = relay_t.local_address
    addr["relay_r"] = relay_r.local_address
    addr["receiver"] = receiver.local_address
    addr["sender"] = sender.local_address
    # Every pump socket has exactly one peer (data out one relay seat,
    # polls back through the other), so all four can be connected — the
    # kernel resolves routes once and drops per-datagram msg_name work.
    sender.connect(addr["relay_t"])
    relay_t.connect(addr["sender"])
    relay_r.connect(addr["receiver"])
    receiver.connect(addr["relay_r"])

    start = loop.time()
    for lane in range(lanes):
        for _ in range(window):
            if sent[0] < messages:
                sent[0] += 1
                sender.send(data_frames[lane], addr["relay_t"])
    sender.flush()
    try:
        await asyncio.wait_for(done, timeout)
    finally:
        wall = loop.time() - start
        stats = merge_wire_stats(ios)
        for io in ios:
            io.close()
    return PumpReport(wire="batched", messages=messages, lanes=lanes,
                      window=window, wall_seconds=wall, wire_stats=stats,
                      pool_outstanding=pool.outstanding)


async def run_wire_pump_async(
    wire: str = "batched",
    messages: int = 8000,
    lanes: int = 8,
    window: int = 32,
    payload_bytes: int = 32,
    timeout: float = 60.0,
) -> PumpReport:
    """Pump ``messages`` data frames end to end; every one is acked."""
    if wire == "classic":
        return await _pump_classic(messages, lanes, window, payload_bytes,
                                   timeout)
    if wire == "batched":
        return await _pump_batched(messages, lanes, window, payload_bytes,
                                   timeout)
    raise ValueError(f"unknown wire mode: {wire!r}")


def run_wire_pump(**kwargs) -> PumpReport:
    """Synchronous wrapper around :func:`run_wire_pump_async`."""
    return asyncio.run(run_wire_pump_async(**kwargs))
