"""Live station endpoints: the TM and RM automata behind real UDP sockets.

The core automata (:class:`~repro.core.transmitter.Transmitter`,
:class:`~repro.core.receiver.Receiver`) are pure state machines — the
simulator drives them with scheduled actions, and this module drives the
*same objects* with datagrams and timers instead.  Each endpoint:

* binds an ephemeral loopback UDP socket and exchanges the canonical
  byte encoding of :mod:`repro.core.packets` with the chaos proxy;
* mirrors every externally visible action (``send_msg``, ``OK``,
  ``receive_msg``, ``crash``, packet sends/deliveries, RETRY) into a
  :class:`~repro.checkers.live.LiveEventLog`, so the Section 2.6 streaming
  verdicts apply to the live run unchanged;
* survives **crash-amnesia**: :meth:`crash` kills the endpoint's tasks and
  wipes every bit of volatile state — the automaton's memory via its own
  ``crash()`` transition (the paper's model: memory dies, the entropy
  source does not) *and* the harness-side volatile state (backoff
  schedule, in-flight bookkeeping).  The station stays dead for
  ``restart_delay`` seconds (datagrams arriving meanwhile are lost, as
  they would be at a down host), then cold-restarts.

Malformed datagrams are rejected by the codec and counted, never raised:
a live port is exposed to whatever bytes arrive, and the causality axiom
that lets the simulator treat decode failures as bugs does not protect a
real socket.

The transmitter's workload is a sequence of *slots*.  A slot whose
handshake dies with a transmitter crash is re-queued under a fresh attempt
suffix — a **distinct** message value, keeping Axiom 2 (no value is ever
sent twice) while still getting every logical slot delivered.  This is the
live analogue of a higher layer resubmitting lost work under a new id.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Callable, Deque, List, Optional, Sequence, Set, Tuple

from repro.checkers.live import LiveEventLog
from repro.core.events import (
    CRASH_R,
    CRASH_T,
    OK,
    RETRY,
    ChannelId,
    Corruption,
    EmitOk,
    EmitPacket,
    EmitReceiveMsg,
    StationOutput,
    make_pkt_delivered,
    make_pkt_sent,
    make_receive_msg,
    make_send_msg,
)
from repro.core.exceptions import CodecError
from repro.core.packets import (
    DataPacket,
    PollEncoder,
    PollPacket,
    decode_packet,
    encode_packet,
    encode_packet_into,
    packet_wire_bytes,
)
from repro.core.random_source import RandomSource
from repro.core.receiver import Receiver
from repro.core.transmitter import Transmitter
from repro.live.backoff import AdaptiveBackoff
from repro.live.wire import BatchedDatagramIO, BufferPool

__all__ = ["TransmitterEndpoint", "ReceiverEndpoint"]

Address = Tuple[str, int]


class _StationProtocol(asyncio.DatagramProtocol):
    def __init__(self, endpoint: "_SocketBase") -> None:
        self._endpoint = endpoint
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self._endpoint._on_datagram(bytes(data))


class _SocketBase:
    """One UDP socket plus audited timer bookkeeping.

    Every volatile timer an endpoint schedules goes through
    :meth:`_call_later` and is tracked until it fires or is cancelled;
    :meth:`_cancel_timers` sweeps them all.  This is the structural fix for
    stale-callback bugs: a backoff/retry callback scheduled before a crash
    must never fire into the automaton that cold-restarts afterwards, and
    teardown must leave nothing pending on the caller's loop.
    """

    def __init__(
        self,
        proxy_addr: Address,
        wire: str = "classic",
        pool: Optional[BufferPool] = None,
    ) -> None:
        if wire not in ("classic", "batched"):
            raise ValueError(f"unknown wire mode {wire!r}")
        self.proxy_addr = proxy_addr
        self.wire = wire
        self._protocol = _StationProtocol(self)
        self._batched: Optional[BatchedDatagramIO] = None
        self._pool = pool
        self._timers: Set[asyncio.TimerHandle] = set()
        self._closed = False

    async def start(self) -> None:
        if self.wire == "batched":
            self._batched = BatchedDatagramIO(self._on_datagram,
                                              pool=self._pool)
            await self._batched.open()
            return
        loop = asyncio.get_running_loop()
        await loop.create_datagram_endpoint(
            lambda: self._protocol, local_addr=("127.0.0.1", 0)
        )

    @property
    def local_address(self) -> Address:
        if self._batched is not None:
            return self._batched.local_address
        return self._protocol.transport.get_extra_info("sockname")

    @property
    def wire_ios(self) -> "List[BatchedDatagramIO]":
        """The batched sockets behind this endpoint ([] on a classic wire)."""
        return [self._batched] if self._batched is not None else []

    @property
    def pending_timer_count(self) -> int:
        """Outstanding scheduled callbacks (exposed for hygiene tests)."""
        return len(self._timers)

    def close(self) -> None:
        self._closed = True
        self._cancel_timers()
        if self._batched is not None:
            self._batched.close()
        if self._protocol.transport is not None:
            self._protocol.transport.close()

    # -- timer hygiene -----------------------------------------------------------

    def _call_later(self, delay: float, callback: Callable[[], None]):
        """Schedule a tracked one-shot callback (auto-untracked on fire)."""
        handle: Optional[asyncio.TimerHandle] = None

        def _fire() -> None:
            self._timers.discard(handle)
            callback()

        handle = asyncio.get_running_loop().call_later(delay, _fire)
        self._timers.add(handle)
        return handle

    def _cancel_timer(self, handle) -> None:
        if handle is not None:
            handle.cancel()
            self._timers.discard(handle)

    def _cancel_timers(self) -> None:
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()

    def _sendto(self, data: bytes) -> None:
        if self._closed:
            return
        if self._batched is not None:
            self._batched.send(data, self.proxy_addr)
            return
        transport = self._protocol.transport
        if transport is not None:
            transport.sendto(data, self.proxy_addr)

    def _send_wire(self, packet, prefix: bytes = b"", encoder=None) -> None:
        """Serialise ``packet`` (behind ``prefix``) and queue it for the wire.

        ``encoder``, when given, is a :class:`PollEncoder` whose output
        already *includes* ``prefix`` — the argument then only sizes the
        pooled buffer.  On the batched wire the packet is encoded straight
        into a pool buffer (no intermediate ``bytes``); on the classic wire
        this reduces to the PR-4/PR-5 concatenating path byte for byte.
        """
        io = self._batched
        if io is None:
            if encoder is not None:
                data = encoder.encode(packet)
            elif prefix:
                data = prefix + encode_packet(packet)
            else:
                data = encode_packet(packet)
            self._sendto(data)
            return
        if self._closed:
            return
        buf = io.pool.acquire(len(prefix) + packet_wire_bytes(packet))
        if encoder is not None:
            end = encoder.encode_into(buf, 0, packet)
        else:
            if prefix:
                buf[: len(prefix)] = prefix
            end = encode_packet_into(buf, len(prefix), packet)
        io.send_pooled(buf, end, self.proxy_addr)

    def _on_datagram(self, data) -> None:
        raise NotImplementedError


class _EndpointBase(_SocketBase):
    """Crash-amnesia scaffolding shared by both single-lane stations."""

    #: ChannelId this station sends on (the other one is its inbound side).
    outbound: ChannelId
    inbound: ChannelId

    def __init__(
        self,
        log: LiveEventLog,
        proxy_addr: Address,
        restart_delay: float = 0.02,
        wire: str = "classic",
        pool: Optional[BufferPool] = None,
    ) -> None:
        super().__init__(proxy_addr, wire=wire, pool=pool)
        self.log = log
        self.restart_delay = restart_delay
        self.dead = False
        self.crashes = 0
        self.corruptions = 0
        self.malformed = 0
        self.dropped_while_dead = 0
        self._out_ids = 0
        self._in_ids = 0

    # -- wire I/O ---------------------------------------------------------------

    def _wire_encoder(self, packet):
        """Cached-prefix encoder for this packet, or None for plain encode."""
        return None

    def _send_packet(self, packet) -> None:
        self._out_ids += 1
        # Packet ids on a live wire are log-local bookkeeping: datagrams
        # carry no id field, so sends and deliveries number independently.
        # The default monitors only ever count these events.
        self.log.record(
            make_pkt_sent(self.outbound, self._out_ids, packet.wire_length_bits)
        )
        self._send_wire(packet, encoder=self._wire_encoder(packet))

    def _on_datagram(self, data) -> None:
        if self._closed:
            return
        if self.dead:
            self.dropped_while_dead += 1
            return
        try:
            packet = decode_packet(data)
        except CodecError:
            self.malformed += 1
            return
        if not isinstance(packet, self._expected_packet):
            self.malformed += 1
            return
        self._in_ids += 1
        self.log.record(make_pkt_delivered(self.inbound, self._in_ids))
        self._handle_packet(packet)

    # -- crash-amnesia -----------------------------------------------------------

    def crash(self) -> None:
        """Kill the station mid-whatever and schedule a cold restart.

        All volatile state dies — including every scheduled backoff/retry
        callback, which would otherwise fire into the restarted automaton;
        the entropy source and the socket (the "hardware") survive, as in
        the paper's crash model.
        """
        if self.dead or self._closed:
            return
        self.dead = True
        self.crashes += 1
        self._cancel_timers()
        self._wipe_volatile_state()
        self._call_later(self.restart_delay, self._restart)

    def _restart(self) -> None:
        if self._closed:
            return
        self.dead = False
        self._on_restarted()

    # subclass hooks
    _expected_packet: type = object

    def _handle_packet(self, packet) -> None:
        raise NotImplementedError

    def _wipe_volatile_state(self) -> None:
        raise NotImplementedError

    def _on_restarted(self) -> None:
        raise NotImplementedError


class _Slot:
    """One logical workload message; ``attempt`` disambiguates resubmissions."""

    __slots__ = ("prefix", "attempt")

    def __init__(self, prefix: bytes, attempt: int = 0) -> None:
        self.prefix = prefix
        self.attempt = attempt

    def value(self) -> bytes:
        if self.attempt == 0:
            return self.prefix
        return self.prefix + b"+r%d" % self.attempt


class TransmitterEndpoint(_EndpointBase):
    """The TM behind a socket: drains a workload of slots, one OK at a time.

    ``on_ok`` fires per acknowledged slot, ``on_done`` once when every slot
    has been OK'd — the scenario supervisor's completion signal.
    """

    outbound = ChannelId.T_TO_R
    inbound = ChannelId.R_TO_T
    _expected_packet = PollPacket

    def __init__(
        self,
        transmitter: Transmitter,
        log: LiveEventLog,
        proxy_addr: Address,
        payloads: Sequence[bytes],
        on_ok: Optional[Callable[[], None]] = None,
        on_done: Optional[Callable[[], None]] = None,
        restart_delay: float = 0.02,
        wire: str = "classic",
        pool: Optional[BufferPool] = None,
    ) -> None:
        super().__init__(log, proxy_addr, restart_delay, wire=wire, pool=pool)
        self.tm = transmitter
        self.queue: Deque[_Slot] = deque(_Slot(p) for p in payloads)
        self.total_slots = len(self.queue)
        self.current: Optional[_Slot] = None
        self.oks = 0
        self.resubmissions = 0
        self._on_ok = on_ok
        self._on_done = on_done

    async def start(self) -> None:
        await super().start()
        self.maybe_send_next()

    @property
    def all_delivered(self) -> bool:
        return self.oks >= self.total_slots

    def maybe_send_next(self) -> None:
        """Submit the next slot if the TM is idle (Axiom 1 discipline)."""
        if self.dead or self._closed or self.current is not None:
            return
        if self.tm.busy or not self.queue:
            return
        slot = self.queue.popleft()
        self.current = slot
        value = slot.value()
        self.log.record(make_send_msg(value))
        # A freshly(-re)started TM holds no receiver challenge and opens
        # silently; the RM's polls will draw the data packet out of it.
        self._dispatch(self.tm.send_msg(value))

    def _dispatch(self, outputs: List[StationOutput]) -> None:
        for output in outputs:
            if isinstance(output, EmitPacket):
                self._send_packet(output.packet)
            elif isinstance(output, EmitOk):
                self.log.record(OK)
                self.oks += 1
                self.current = None
                if self._on_ok is not None:
                    self._on_ok()
                if self.all_delivered and not self.queue:
                    if self._on_done is not None:
                        self._on_done()
                else:
                    self.maybe_send_next()

    def _handle_packet(self, packet: PollPacket) -> None:
        self._dispatch(self.tm.on_receive_pkt(packet))

    def corrupt(self, seed: int, fields: Optional[Sequence[str]] = None) -> Tuple[str, ...]:
        """Scramble the live TM's volatile state in place (no dead window).

        Unlike :meth:`crash`, the station keeps running on whatever garbage
        the scramble produced — the self-stabilization fault model.  If the
        scramble dropped the in-flight message (``busy`` flipped off), the
        current slot is re-queued under a fresh attempt suffix exactly as a
        crash would, because the payload bits are unrecoverable either way.
        """
        if self.dead or self._closed:
            return ()
        scrambled = self.tm.corrupt(RandomSource(seed), fields)
        self.corruptions += 1
        self.log.record(Corruption(station="T", fields=scrambled, seed=seed))
        if not self.tm.busy and self.current is not None:
            slot = self.current
            self.current = None
            self.resubmissions += 1
            self.queue.appendleft(_Slot(slot.prefix, slot.attempt + 1))
        self.maybe_send_next()
        return scrambled

    def _wipe_volatile_state(self) -> None:
        self.log.record(CRASH_T)
        self.tm.crash()
        if self.current is not None:
            # The in-flight message died with the memory.  Re-queue the slot
            # under a fresh attempt suffix: a distinct value (Axiom 2), same
            # logical payload, delivered on a later handshake.
            slot = self.current
            self.current = None
            self.resubmissions += 1
            self.queue.appendleft(_Slot(slot.prefix, slot.attempt + 1))

    def _on_restarted(self) -> None:
        self.maybe_send_next()


class ReceiverEndpoint(_EndpointBase):
    """The RM behind a socket: a poll loop paced by adaptive backoff.

    The RETRY action becomes a chain of tracked one-shot timers: poll,
    schedule the next poll ``next_delay()`` later, repeat.  Progress (a
    delivery or a nonce update) resets the backoff and triggers an
    immediate acknowledging poll, which is what keeps handshake latency
    near the base delay on a healthy link while a congested or partitioned
    one decays toward the cap.  Because the chain runs on the audited
    :meth:`_call_later`, a crash or teardown cancels the pending poll
    outright — no stale callback ever polls on behalf of a wiped automaton.

    Polls between two progress events differ only in their retry counter,
    so the wire bytes come from a :class:`PollEncoder` prefix cache instead
    of a full re-encode per resend.
    """

    outbound = ChannelId.R_TO_T
    inbound = ChannelId.T_TO_R
    _expected_packet = DataPacket

    def __init__(
        self,
        receiver: Receiver,
        log: LiveEventLog,
        proxy_addr: Address,
        backoff: AdaptiveBackoff,
        on_progress: Optional[Callable[[], None]] = None,
        on_delivery: Optional[Callable[[bytes], None]] = None,
        restart_delay: float = 0.02,
        wire: str = "classic",
        pool: Optional[BufferPool] = None,
    ) -> None:
        super().__init__(log, proxy_addr, restart_delay, wire=wire, pool=pool)
        self.rm = receiver
        self.backoff = backoff
        self.deliveries = 0
        self.delivered: List[bytes] = []
        self._on_progress = on_progress
        self._on_delivery = on_delivery
        self._poll_handle: Optional[asyncio.TimerHandle] = None
        self._poll_encoder = PollEncoder()

    async def start(self) -> None:
        await super().start()
        self._poll_tick()

    def _wire_encoder(self, packet):
        if type(packet) is PollPacket:
            return self._poll_encoder
        return None

    @property
    def polls_without_progress(self) -> int:
        """How far the backoff has decayed (the give-up policy's input)."""
        return self.backoff.attempts_without_progress

    def _poll_tick(self) -> None:
        self._poll_handle = None
        if self.dead or self._closed:
            return
        self._send_poll()
        self._poll_handle = self._call_later(
            self.backoff.next_delay(), self._poll_tick
        )

    def _send_poll(self) -> None:
        if self.dead or self._closed:
            return
        self.log.record(RETRY)
        for output in self.rm.retry():
            if isinstance(output, EmitPacket):
                self._send_packet(output.packet)

    def _handle_packet(self, packet: DataPacket) -> None:
        tau_before = self.rm.tau
        outputs = self.rm.on_receive_pkt(packet)
        progressed = False
        for output in outputs:
            if isinstance(output, EmitReceiveMsg):
                self.log.record(make_receive_msg(output.message))
                self.deliveries += 1
                self.delivered.append(output.message)
                progressed = True
                if self._on_delivery is not None:
                    self._on_delivery(output.message)
        if not progressed and self.rm.tau != tau_before:
            progressed = True  # same handshake, the TM extended its nonce
        if progressed:
            self.backoff.note_progress()
            if self._on_progress is not None:
                self._on_progress()
            # Acknowledge immediately instead of waiting out the timer —
            # the poll carries the new (rho, tau) the TM needs for its OK.
            # Restart the chain so the next timed poll sits one reset
            # backoff delay after this ack, not wherever the old timer was.
            self._cancel_timer(self._poll_handle)
            self._poll_handle = None
            self._poll_tick()

    def corrupt(self, seed: int, fields: Optional[Sequence[str]] = None) -> Tuple[str, ...]:
        """Scramble the live RM's volatile state in place (no dead window).

        The poll chain keeps running: the very next poll carries the
        scrambled (rho, tau), and the handshake reconverges because the TM
        always echoes the challenge of the poll it answers.
        """
        if self.dead or self._closed:
            return ()
        scrambled = self.rm.corrupt(RandomSource(seed), fields)
        self.corruptions += 1
        self.log.record(Corruption(station="R", fields=scrambled, seed=seed))
        return scrambled

    def _wipe_volatile_state(self) -> None:
        # crash() has already swept every tracked timer, including the
        # pending poll; drop the dangling reference.
        self._poll_handle = None
        self.log.record(CRASH_R)
        self.rm.crash()
        self.backoff.reset()

    def _on_restarted(self) -> None:
        self._poll_tick()
