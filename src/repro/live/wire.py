"""Zero-copy batched datagram I/O for the live protocol stack.

The PR-4/PR-5 wire wakes the event loop once per datagram and allocates a
fresh ``bytes`` per packet in each direction.  On loopback with zero
synthetic latency the 8-lane handshake chain is self-clocking, so syscall
count and allocation churn *are* the throughput ceiling.  This module
replaces asyncio's per-datagram transport with a drain/flush socket layer:

* **Drain**: one reader-ready wakeup drains *every* queued datagram from
  the non-blocking socket — via a ctypes ``recvmmsg`` fast path (one
  syscall per chunk of up to :data:`BATCH`) where libc provides it, else a
  ``recv_into`` loop — into preallocated receive buffers, and hands each
  one to the callback as a ``memoryview`` slice.  **A delivered view is
  only valid until the next drain chunk** (docs/PROTOCOL.md §15); anything
  that must outlive the wakeup is copied by whoever holds it.
* **Flush**: sends gather into a pending batch and leave in one
  ``sendmmsg`` call per chunk (fallback: a ``sendto`` loop).  Inside a
  drain, the batch is flushed after every chunk and *before* the receive
  buffers are reused, so forwarded views are always consumed while still
  valid.  Several IOs (the chaos proxy's two sides plus both stations)
  share one *flush group* for exactly this reason: a datagram drained on
  one socket may enqueue sends on another.
* **Pooling**: outbound packets are encoded straight into reusable
  ``bytearray`` buffers from a :class:`BufferPool`; the pool's counters
  (``outstanding``/``allocated``/``high_water``) make buffer leaks — e.g.
  a crash-amnesia restart forgetting in-flight buffers — checkable.

If a flush cannot complete synchronously (``EAGAIN``: the send buffer is
full), the leftover entries are *stabilized* — borrowed views copied into
pool buffers — and a writer callback retries, so no pending send ever
references a receive buffer across wakeups.

Everything here degrades cleanly: no ``recvmmsg``/``sendmmsg`` in libc
(non-Linux), or ``use_mmsg=False``, selects the plain non-blocking
fallback with identical semantics.
"""

from __future__ import annotations

import ctypes
import errno
import os
import socket
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

__all__ = [
    "BATCH",
    "RECV_SIZE",
    "BufferPool",
    "WireStats",
    "BatchedDatagramIO",
    "link_flush_group",
    "merge_wire_stats",
    "mmsg_available",
]

Address = Tuple[str, int]

#: Datagrams per recvmmsg/sendmmsg call.  Also the reuse granularity of the
#: receive buffers: views handed out for one chunk die when the next chunk
#: is drained.
BATCH = 32

#: Receive buffer size per slot.  Protocol datagrams are tiny (a data
#: packet with the default workload is well under 200 bytes; nonces are
#: capped far below 4096 bits), and the codec's strict truncation checks
#: reject anything that would not have fit — so an oversized datagram is
#: counted malformed, never silently split.
RECV_SIZE = 4096


class BufferPool:
    """Reusable ``bytearray`` send buffers with leak accounting.

    ``acquire`` hands out a buffer of at least ``min_size`` bytes;
    ``release`` returns it.  The free list is bounded (``max_free``), so a
    burst allocates transiently but the steady state is a handful of
    buffers cycling.  ``outstanding`` must return to zero when the wire is
    idle — the crash-amnesia leak check in tests/live/test_wire.py pins
    exactly that.
    """

    __slots__ = ("_free", "default_size", "max_free",
                 "allocated", "outstanding", "high_water")

    def __init__(self, default_size: int = 2048, max_free: int = 64) -> None:
        self._free: List[bytearray] = []
        self.default_size = default_size
        self.max_free = max_free
        self.allocated = 0   # total bytearrays ever created
        self.outstanding = 0  # acquired and not yet released
        self.high_water = 0   # max simultaneous outstanding

    def acquire(self, min_size: int = 0) -> bytearray:
        buf = self._free.pop() if self._free else None
        if buf is None or len(buf) < min_size:
            # Too-small recycled buffers are rare (poll/data packets are
            # near-constant size); just replace rather than searching.
            buf = bytearray(max(min_size, self.default_size))
            self.allocated += 1
        self.outstanding += 1
        if self.outstanding > self.high_water:
            self.high_water = self.outstanding
        return buf

    def release(self, buf: bytearray) -> None:
        self.outstanding -= 1
        if len(self._free) < self.max_free:
            self._free.append(buf)

    @property
    def free_count(self) -> int:
        return len(self._free)


@dataclass
class WireStats:
    """Per-socket batching accounting (surfaced in the scenario report)."""

    datagrams_received: int = 0
    datagrams_sent: int = 0
    recv_batches: int = 0   # recvmmsg/recv-loop chunks that yielded data
    send_batches: int = 0   # sendmmsg/sendto-loop flushes that sent data
    send_errors: int = 0    # datagrams dropped on a hard send error
    stabilized: int = 0     # borrowed views copied on a deferred flush
    mmsg: bool = False      # True when the ctypes fast path is active

    def merge(self, other: "WireStats") -> None:
        self.datagrams_received += other.datagrams_received
        self.datagrams_sent += other.datagrams_sent
        self.recv_batches += other.recv_batches
        self.send_batches += other.send_batches
        self.send_errors += other.send_errors
        self.stabilized += other.stabilized
        self.mmsg = self.mmsg or other.mmsg


# -- ctypes recvmmsg/sendmmsg ---------------------------------------------------
#
# Structures mirror <sys/socket.h> on Linux; ctypes applies native field
# alignment, which matches the ABI (the 4-byte pad after msg_namelen falls
# out of aligning the msg_iov pointer).

class _IoVec(ctypes.Structure):
    _fields_ = [("iov_base", ctypes.c_void_p),
                ("iov_len", ctypes.c_size_t)]


class _MsgHdr(ctypes.Structure):
    _fields_ = [("msg_name", ctypes.c_void_p),
                ("msg_namelen", ctypes.c_uint),
                ("msg_iov", ctypes.POINTER(_IoVec)),
                ("msg_iovlen", ctypes.c_size_t),
                ("msg_control", ctypes.c_void_p),
                ("msg_controllen", ctypes.c_size_t),
                ("msg_flags", ctypes.c_int)]


class _MMsgHdr(ctypes.Structure):
    _fields_ = [("msg_hdr", _MsgHdr),
                ("msg_len", ctypes.c_uint)]


class _SockAddrIn(ctypes.Structure):
    _fields_ = [("sin_family", ctypes.c_ushort),
                ("sin_port", ctypes.c_ushort),   # network byte order
                ("sin_addr", ctypes.c_ubyte * 4),
                ("sin_zero", ctypes.c_ubyte * 8)]


#: Zero-length window type for borrowing a buffer's base address without
#: creating a per-size array type on every send (``(c_char * n)`` would
#: allocate a new ctypes type for each distinct length).
_C0 = ctypes.c_char * 0


class _MMsgApi:
    __slots__ = ("recvmmsg", "sendmmsg")

    def __init__(self, recvmmsg, sendmmsg) -> None:
        self.recvmmsg = recvmmsg
        self.sendmmsg = sendmmsg


_MMSG_API: Optional[_MMsgApi] = None
_MMSG_PROBED = False


def _load_mmsg() -> Optional[_MMsgApi]:
    """Resolve recvmmsg/sendmmsg from libc once; None where unavailable."""
    global _MMSG_API, _MMSG_PROBED
    if _MMSG_PROBED:
        return _MMSG_API
    _MMSG_PROBED = True
    if os.environ.get("REPRO_NO_MMSG"):
        return None
    try:
        libc = ctypes.CDLL(None, use_errno=True)
        recvmmsg = libc.recvmmsg
        sendmmsg = libc.sendmmsg
    except (OSError, AttributeError):
        return None
    recvmmsg.argtypes = [ctypes.c_int, ctypes.POINTER(_MMsgHdr),
                         ctypes.c_uint, ctypes.c_int, ctypes.c_void_p]
    recvmmsg.restype = ctypes.c_int
    sendmmsg.argtypes = [ctypes.c_int, ctypes.POINTER(_MMsgHdr),
                         ctypes.c_uint, ctypes.c_int]
    sendmmsg.restype = ctypes.c_int
    _MMSG_API = _MMsgApi(recvmmsg, sendmmsg)
    return _MMSG_API


def mmsg_available() -> bool:
    """Whether the recvmmsg/sendmmsg fast path can be used on this host."""
    return _load_mmsg() is not None


def _pack_sockaddr(addr: Address) -> _SockAddrIn:
    sa = _SockAddrIn()
    sa.sin_family = socket.AF_INET
    sa.sin_port = socket.htons(addr[1])
    packed = socket.inet_aton(addr[0])
    for i in range(4):
        sa.sin_addr[i] = packed[i]
    return sa


_EAGAIN = {errno.EAGAIN, errno.EWOULDBLOCK}


class _GroupState:
    """Drain bookkeeping shared by every member of one flush group.

    ``draining`` counts group members currently inside their drain loop;
    sends enqueued while it is non-zero wait for the per-chunk group flush
    (one shared counter beats scanning the member list on every send).

    ``base_cache`` maps ``id(buffer) -> (buffer, base address)`` for
    buffers whose C base address is stable: pool send buffers and every
    member's receive buffers.  It is shared group-wide because a datagram
    drained on one socket is often forwarded out another (the proxy), and
    the flush on the *destination* socket is what needs the address.
    Values hold the buffer, so a cached id can never be recycled.
    """

    __slots__ = ("draining", "base_cache")

    def __init__(self) -> None:
        self.draining = 0
        self.base_cache: "dict[int, Tuple[object, int]]" = {}


class BatchedDatagramIO:
    """One non-blocking UDP socket with batch drain/flush semantics.

    ``on_datagram`` receives each drained datagram as a writable
    ``memoryview`` slice of a reused receive buffer — valid only until the
    callback returns control to the drain loop (next chunk overwrites it).

    Sends (:meth:`send` for stable/borrowed data, :meth:`send_pooled` for
    pool buffers filled via ``encode_packet_into``) gather into a pending
    list; :meth:`flush` pushes them out in ``sendmmsg`` chunks.  While any
    member of the flush group is draining, sends wait for the per-chunk
    group flush instead of leaving one-at-a-time.
    """

    def __init__(
        self,
        on_datagram: Callable[[memoryview], None],
        pool: Optional[BufferPool] = None,
        batch: int = BATCH,
        recv_size: int = RECV_SIZE,
        use_mmsg: Optional[bool] = None,
    ) -> None:
        self.on_datagram = on_datagram
        self.pool = pool if pool is not None else BufferPool()
        self.batch = batch
        self.recv_size = recv_size
        api = _load_mmsg() if use_mmsg in (None, True) else None
        if use_mmsg is True and api is None:
            raise OSError("recvmmsg/sendmmsg not available on this platform")
        self._api = api
        self.stats = WireStats(mmsg=api is not None)
        self._sock: Optional[socket.socket] = None
        self._fd = -1
        self._loop = None
        self._connected: Optional[Address] = None
        self._closed = False
        self._writer_armed = False
        # The flush group: IOs whose sends must all be flushed before any
        # member reuses its receive buffers.  Starts as just this IO;
        # link_flush_group() merges groups.
        self.group: List["BatchedDatagramIO"] = [self]
        self._gstate = _GroupState()
        # Pending sends: (obj, nbytes, addr, pooled).  `obj` is bytes, a
        # pool bytearray (pooled=True), or a borrowed memoryview that
        # flush() consumes before the borrow expires.
        self._pending: List[Tuple[object, int, Address, bool]] = []
        # addr -> (sockaddr struct, its address).  The struct keeps the
        # memory alive; the cached integer is what sendmmsg headers want.
        self._saddr_cache: "dict[Address, Tuple[_SockAddrIn, int]]" = {}
        # Preallocated receive machinery (shared by both paths; the mmsg
        # arrays additionally pin iovecs/headers to the buffers once).
        self._rbufs = [bytearray(recv_size) for _ in range(batch)]
        self._rviews = [memoryview(b) for b in self._rbufs]
        if api is not None:
            self._recvmmsg = api.recvmmsg
            self._sendmmsg = api.sendmmsg
            self._rcbufs = [(ctypes.c_char * recv_size).from_buffer(b)
                            for b in self._rbufs]
            # Drained views are always offset-0 slices of these buffers,
            # so the flush path can reuse the base addresses pinned here.
            for rbuf, ref in zip(self._rbufs, self._rcbufs):
                self._gstate.base_cache[id(rbuf)] = (
                    rbuf, ctypes.addressof(ref))
            self._riovs = (_IoVec * batch)()
            self._rhdrs = (_MMsgHdr * batch)()
            for i in range(batch):
                self._riovs[i].iov_base = ctypes.cast(
                    self._rcbufs[i], ctypes.c_void_p)
                self._riovs[i].iov_len = recv_size
                hdr = self._rhdrs[i].msg_hdr
                hdr.msg_name = None  # sender address unused: peers are fixed
                hdr.msg_namelen = 0
                hdr.msg_iov = ctypes.pointer(self._riovs[i])
                hdr.msg_iovlen = 1
            # Everything invariant in the send headers is written once
            # here; per-flush work is reduced to three machine-word stores
            # per datagram through the flat views below (ctypes attribute
            # access costs ~10x a memoryview word store).
            self._shdrs = (_MMsgHdr * batch)()
            self._siovs = (_IoVec * batch)()
            for i in range(batch):
                hdr = self._shdrs[i].msg_hdr
                hdr.msg_namelen = ctypes.sizeof(_SockAddrIn)
                hdr.msg_iov = ctypes.pointer(self._siovs[i])
                hdr.msg_iovlen = 1
            self._siov_q = memoryview(self._siovs).cast("B").cast("Q")
            self._shdr_q = memoryview(self._shdrs).cast("B").cast("Q")
            self._shdr_stride = ctypes.sizeof(_MMsgHdr) // 8  # msg_name is word 0
            mlen_off = _MMsgHdr.msg_len.offset
            stride = ctypes.sizeof(_MMsgHdr)
            self._rlens = memoryview(self._rhdrs).cast("B").cast("I")
            self._rlen_idx = [(mlen_off + stride * i) // 4
                              for i in range(batch)]

    # -- lifecycle ---------------------------------------------------------------

    async def open(self, local_addr: Address = ("127.0.0.1", 0)) -> None:
        import asyncio

        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setblocking(False)
        # Deep kernel queues: the whole point is to let datagrams pile up
        # between wakeups instead of waking per datagram.
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1 << 20)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 1 << 20)
        except OSError:
            pass
        sock.bind(local_addr)
        self._sock = sock
        self._fd = sock.fileno()
        self._loop = asyncio.get_running_loop()
        self._loop.add_reader(self._fd, self._on_readable)

    def connect(self, remote_addr: Address) -> None:
        """Pin the socket to a single fixed peer (strictly 1:1 links only).

        The kernel then resolves the route once instead of per datagram
        and the sendmmsg headers carry no per-datagram destination.  A
        connected UDP socket silently drops traffic from any other
        source, so this is only correct where the topology guarantees
        one peer — e.g. the wire pump, where every socket talks to
        exactly one other.  Sends must still pass the peer's address
        (checked), so call sites read identically in both modes.

        Call after :meth:`open`; peers with mutual links must all bind
        before either end connects.
        """
        assert self._sock is not None, "connect() requires open() first"
        self._sock.connect(remote_addr)
        self._connected = remote_addr
        if self._api is not None:
            # Connected sends pass msg_name=NULL: zero the name fields
            # once here rather than branching per datagram (flushes done
            # before connecting may have written addresses into them).
            for i in range(self.batch):
                self._shdrs[i].msg_hdr.msg_name = None
                self._shdrs[i].msg_hdr.msg_namelen = 0

    @property
    def local_address(self) -> Address:
        assert self._sock is not None
        return self._sock.getsockname()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._sock is not None and self._loop is not None:
            try:
                self.flush()
            except OSError:
                pass
            self._loop.remove_reader(self._fd)
            if self._writer_armed:
                self._loop.remove_writer(self._fd)
                self._writer_armed = False
        # Anything still pending is dropped, but pooled buffers must go
        # home — leaking them on teardown would fail the hygiene check.
        for obj, _n, _addr, pooled in self._pending:
            if pooled:
                self.pool.release(obj)  # type: ignore[arg-type]
        self._pending.clear()
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    # -- receive: the drain loop -------------------------------------------------

    def _on_readable(self) -> None:
        if self._closed:
            return
        gstate = self._gstate
        gstate.draining += 1
        try:
            while True:
                n = self._recv_chunk()
                # Consume every send the chunk's callbacks enqueued (on any
                # group member) BEFORE the buffers the forwarded views
                # point into are overwritten by the next chunk.
                self._flush_group()
                if n < self.batch or self._closed:
                    break
        finally:
            gstate.draining -= 1

    def _recv_chunk(self) -> int:
        if self._api is not None:
            return self._recv_chunk_mmsg()
        return self._recv_chunk_fallback()

    def _recv_chunk_mmsg(self) -> int:
        n = self._recvmmsg(self._fd, self._rhdrs, self.batch, 0, None)
        if n < 0:
            err = ctypes.get_errno()
            if err in _EAGAIN or err == errno.EINTR:
                return 0
            if err == errno.ECONNREFUSED:
                # Queued ICMP error from a peer that briefly had no
                # listener; UDP semantics say keep going.
                return 0
            raise OSError(err, os.strerror(err))
        if n == 0:
            return 0
        self.stats.recv_batches += 1
        self.stats.datagrams_received += n
        dispatch = self.on_datagram
        views = self._rviews
        lens = self._rlens
        idx = self._rlen_idx
        for i in range(n):
            if self._closed:
                break
            dispatch(views[i][: lens[idx[i]]])
        return n

    def _recv_chunk_fallback(self) -> int:
        assert self._sock is not None
        sock = self._sock
        bufs = self._rbufs
        views = self._rviews
        filled = []
        for i in range(self.batch):
            try:
                nbytes = sock.recv_into(bufs[i], self.recv_size)
            except (BlockingIOError, InterruptedError):
                break
            except ConnectionRefusedError:
                # Queued ICMP error; the slot holds nothing — reuse it.
                filled.append((i, -1))
                continue
            filled.append((i, nbytes))
        got = [(i, n) for i, n in filled if n >= 0]
        if not got:
            return 0
        self.stats.recv_batches += 1
        self.stats.datagrams_received += len(got)
        dispatch = self.on_datagram
        for i, nbytes in got:
            if self._closed:
                break
            dispatch(views[i][:nbytes])
        return len(filled)

    # -- send: gather + flush ----------------------------------------------------

    def send(self, data, addr: Address) -> None:
        """Queue one datagram (bytes, or a view consumed by the flush).

        Inside a drain (of any group member) the per-chunk group flush
        batches this send with its siblings; outside one, it leaves now.
        A forwarded receive view must be the exact slice handed to
        ``on_datagram`` (it starts at offset 0 of its backing buffer; the
        flush path relies on that when reusing cached base addresses).
        """
        if self._closed:
            return
        con = self._connected
        if con is not None and addr is not con and addr != con:
            raise ValueError(f"socket is connected to {con}, not {addr}")
        self._pending.append((data, len(data), addr, False))
        if not self._gstate.draining:
            self.flush()

    def send_pooled(self, buf: bytearray, nbytes: int, addr: Address) -> None:
        """Queue a pool buffer's first ``nbytes``; released after sending."""
        if self._closed:
            self.pool.release(buf)
            return
        con = self._connected
        if con is not None and addr is not con and addr != con:
            self.pool.release(buf)
            raise ValueError(f"socket is connected to {con}, not {addr}")
        self._pending.append((buf, nbytes, addr, True))
        if not self._gstate.draining:
            self.flush()

    def _flush_group(self) -> None:
        for io in self.group:
            if io._pending and not io._closed:
                io.flush()

    def flush(self) -> None:
        """Push pending sends out; stabilize + defer leftovers on EAGAIN.

        Postcondition: no pending entry borrows caller memory (receive
        buffers) — whatever could not leave synchronously has been copied
        into pool buffers and will be retried on socket writability.
        """
        if not self._pending or self._sock is None:
            return
        if self._api is None or len(self._pending) == 1:
            # A lone datagram (timer-driven poll outside a drain) leaves
            # via plain sendto: one syscall either way, no marshalling.
            self._flush_fallback()
        else:
            self._flush_mmsg()
        if self._pending:
            self._stabilize_pending()
            self._arm_writer()

    def _flush_mmsg(self) -> None:
        fd = self._fd
        pending = self._pending
        batch = self.batch
        siov_q = self._siov_q
        shdr_q = self._shdr_q
        hstride = self._shdr_stride
        sendmmsg = self._sendmmsg
        saddr_cache = self._saddr_cache
        base_cache = self._gstate.base_cache
        from_buffer = _C0.from_buffer
        addressof = ctypes.addressof
        connected = self._connected is not None
        while pending:
            chunk = pending[:batch]
            # `keepalive` pins the borrowed ctypes windows until the
            # sendmmsg call returns.
            keepalive = []
            pin = keepalive.append
            qi = 0
            hi = 0
            for obj, nbytes, addr, pooled in chunk:
                if pooled:
                    # Pool buffers cycle, are never resized, and stay alive
                    # via the cache value — so their base address is stable
                    # and computed exactly once per buffer.
                    cached = base_cache.get(id(obj))
                    if cached is None or cached[0] is not obj:
                        ref = from_buffer(obj)
                        cached = (obj, addressof(ref))
                        del ref  # drop the export; address stays valid
                        base_cache[id(obj)] = cached
                    base = cached[1]
                elif type(obj) is bytes:
                    # Retransmitted frames (Axiom 2: identical re-sends)
                    # make the same immutable bytes objects recur; their
                    # buffer address is fixed for the object's lifetime,
                    # so it too is computed once.  The insert is bounded
                    # so one-shot payloads cannot grow the cache forever
                    # (past the bound they just recompute each flush).
                    cached = base_cache.get(id(obj))
                    if cached is not None and cached[0] is obj:
                        base = cached[1]
                    else:
                        # No keepalive pin needed: `chunk` holds obj past
                        # the sendmmsg call, and a cache hit keeps it
                        # alive via the cache value thereafter.
                        base = ctypes.cast(
                            ctypes.c_char_p(obj), ctypes.c_void_p).value
                        if len(base_cache) < 4096:
                            base_cache[id(obj)] = (obj, base)
                else:
                    # Writable memoryview — in practice a drained receive
                    # slice being forwarded, which is always an offset-0
                    # slice of a receive buffer registered group-wide.
                    cached = base_cache.get(id(obj.obj))
                    if cached is not None and cached[0] is obj.obj:
                        base = cached[1]
                    else:
                        # Unknown backing buffer: borrow a zero-length
                        # window; it still carries the base address.
                        ref = from_buffer(obj)
                        pin(ref)
                        base = addressof(ref)
                siov_q[qi] = base
                siov_q[qi + 1] = nbytes
                if not connected:
                    sa = saddr_cache.get(addr)
                    if sa is None:
                        struct_ = _pack_sockaddr(addr)
                        sa = (struct_, addressof(struct_))
                        saddr_cache[addr] = sa
                    shdr_q[hi] = sa[1]
                qi += 2
                hi += hstride
            sent = sendmmsg(fd, self._shdrs, len(chunk), 0)
            del keepalive
            if sent < 0:
                err = ctypes.get_errno()
                if err in _EAGAIN:
                    return  # caller stabilizes + defers the rest
                if err == errno.EINTR:
                    continue
                if err == errno.ECONNREFUSED:
                    # A queued ICMP error consumed the call; nothing from
                    # this chunk was sent.  Retry — the error is drained.
                    self.stats.send_errors += 1
                    continue
                # Hard error: fall back to per-datagram sendto so one bad
                # destination cannot wedge the whole batch.
                self._flush_fallback()
                return
            self.stats.send_batches += 1
            self.stats.datagrams_sent += sent
            for obj, _n, _addr, pooled in chunk[:sent]:
                if pooled:
                    self.pool.release(obj)  # type: ignore[arg-type]
            del pending[:sent]
            if sent < len(chunk):
                return  # kernel backpressure mid-chunk: defer the rest

    def _flush_fallback(self) -> None:
        assert self._sock is not None
        sock = self._sock
        connected = self._connected is not None
        pending = self._pending
        sent_any = 0
        while pending:
            obj, nbytes, addr, pooled = pending[0]
            data = obj if len(obj) == nbytes else memoryview(obj)[:nbytes]
            try:
                if connected:
                    sock.send(data)
                else:
                    sock.sendto(data, addr)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self.stats.send_errors += 1
            else:
                sent_any += 1
                self.stats.datagrams_sent += 1
            if pooled:
                self.pool.release(obj)
            del pending[0]
        if sent_any:
            self.stats.send_batches += 1

    def _stabilize_pending(self) -> None:
        """Copy borrowed views into pool buffers (deferred-flush safety)."""
        pending = self._pending
        for i, (obj, nbytes, addr, pooled) in enumerate(pending):
            if pooled or isinstance(obj, bytes):
                continue
            buf = self.pool.acquire(nbytes)
            buf[:nbytes] = obj[:nbytes] if len(obj) != nbytes else obj
            pending[i] = (buf, nbytes, addr, True)
            self.stats.stabilized += 1

    def _arm_writer(self) -> None:
        if self._writer_armed or self._closed or self._loop is None:
            return
        self._writer_armed = True
        self._loop.add_writer(self._fd, self._on_writable)

    def _on_writable(self) -> None:
        if self._closed:
            return
        self.flush()
        if not self._pending and self._writer_armed:
            self._loop.remove_writer(self._fd)
            self._writer_armed = False


def link_flush_group(ios: List[BatchedDatagramIO]) -> None:
    """Merge the given IOs into one shared flush group.

    Required whenever a datagram drained on one socket can enqueue a send
    on another (station ⇄ proxy topologies): the drain loop flushes the
    *group* after each chunk, keeping every borrowed view inside its
    validity window.
    """
    merged: List[BatchedDatagramIO] = []
    for io in ios:
        for member in io.group:
            if member not in merged:
                merged.append(member)
    state = _GroupState()
    for old in {id(io._gstate): io._gstate for io in merged}.values():
        state.draining += old.draining
        state.base_cache.update(old.base_cache)
    for io in merged:
        io.group = merged
        io._gstate = state


def merge_wire_stats(ios: List[BatchedDatagramIO]) -> WireStats:
    """Aggregate stats across a run's sockets (for the scenario report)."""
    total = WireStats()
    for io in ios:
        total.merge(io.stats)
    return total
