"""Adaptive poll retransmission: jittered exponential backoff with reset.

The paper's RM owes the protocol an infinitely recurring RETRY action; a
live deployment must pace those retries against a real clock.  Polling at
a fixed interval either hammers a congested link or crawls on a healthy
one, so the receiver endpoint adapts: each poll that produces no progress
doubles the delay (up to a cap), any progress — a delivery or a nonce
update — snaps the delay back to the base.  Jitter decorrelates the two
stations' timers (the classic thundering-herd fix), and every draw comes
from a seeded :class:`~repro.core.random_source.RandomSource`, so the
schedule is a deterministic function of (policy, seed, progress history)
— which is what the unit tests pin down.

The same policy also drives the scenario supervisor's give-up bookkeeping:
``attempts_without_progress`` is the count a bounded give-up compares
against, surfacing UNRECONCILABLE instead of polling forever.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.random_source import RandomSource

__all__ = ["BackoffPolicy", "AdaptiveBackoff"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Shape of the retransmission schedule (all times in seconds).

    The n-th consecutive no-progress delay is
    ``min(cap, base * factor**n) * u`` with ``u`` uniform in
    ``[1 - jitter, 1 + jitter)``.
    """

    base: float = 0.01
    factor: float = 2.0
    cap: float = 0.25
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base <= 0.0:
            raise ValueError("base delay must be positive")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if self.cap < self.base:
            raise ValueError("cap must be >= base")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")


class AdaptiveBackoff:
    """Stateful schedule: next delay grows without progress, resets with it."""

    def __init__(self, policy: BackoffPolicy, rng: RandomSource) -> None:
        self.policy = policy
        self._rng = rng
        self._attempts = 0

    @property
    def attempts_without_progress(self) -> int:
        """Delays handed out since the last :meth:`note_progress` (or start)."""
        return self._attempts

    def next_delay(self) -> float:
        """The delay to sleep before the next poll retransmission."""
        policy = self.policy
        raw = policy.base * (policy.factor ** self._attempts)
        self._attempts += 1
        bounded = min(policy.cap, raw)
        if policy.jitter == 0.0:
            return bounded
        span = 2.0 * policy.jitter
        return bounded * (1.0 - policy.jitter + span * self._rng.random_float())

    def note_progress(self) -> None:
        """Snap back to the base delay (a delivery or nonce update landed)."""
        self._attempts = 0

    def reset(self) -> None:
        """Forget everything — volatile state, erased by a station crash."""
        self._attempts = 0

    def __repr__(self) -> str:
        return (
            f"AdaptiveBackoff(attempts={self._attempts}, "
            f"base={self.policy.base}, cap={self.policy.cap})"
        )
