"""Chaos proxy: wire-level fault injection between live stations.

The simulator's adversary decides the fate of every packet from inside the
discrete-event loop; on a live link the same role is played by an in-path
UDP relay.  :class:`ChaosProxy` binds one socket facing each station and
forwards datagrams between them, compiling two fault sources into wire
behaviour:

* the **scripted** :class:`~repro.resilience.faultplan.FaultPlan` schema —
  the exact JSON plans campaigns archive and shrink — where turn numbers
  become 1-based counts of datagrams the proxy has observed:

  - ``drop``  → the datagram is not forwarded (with ``channel: null``
    covering both directions, i.e. a full **partition**);
  - ``duplicate`` → the most recently forwarded datagram is re-sent
    ``copies`` times, ``spacing`` quanta apart;
  - ``stall`` → arrivals inside the window are buffered and released when
    the window closes (reordering them behind later traffic);
  - ``crash`` → the proxy does not touch the datagram but tells the crash
    orchestrator to kill the named station (see :mod:`repro.live.scenario`);
    on a multi-lane wire the observed datagram's lane id rides along, so a
    scenario can crash just the lane the trigger datagram belonged to;
  - ``corrupt`` → the proxy tells the scenario to scramble the named
    station's volatile state *in place* (seed-pinned, no dead window);
    ``mode: "wipe"`` rides the crash trigger instead — the live half of
    the wipe ≡ crash identity;
  - ``hang``  → the link goes silent for ``seconds`` of wall clock
    (``null`` = until the scenario's give-up deadline fires);
  - ``abort`` → the scenario is torn down (harness-failure drill).

* a **stochastic** :class:`LinkProfile` — per-datagram drop, duplication,
  reordering and delay drawn from a seeded
  :class:`~repro.core.random_source.RandomSource`.

Adversary visibility is enforced structurally: the proxy inspects traffic
only through :func:`~repro.core.packets.peek_wire_info` — identifier octet
and datagram length, exactly what Section 2.3 grants the adversary — and
never decodes payloads.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.events import ChannelId
from repro.core.exceptions import CodecError
from repro.core.packets import peek_wire_info
from repro.core.random_source import RandomSource
from repro.live.wire import BatchedDatagramIO, BufferPool, link_flush_group
from repro.resilience.faultplan import (
    AbortAt,
    CorruptAt,
    CrashAt,
    DropWindow,
    DuplicateBurst,
    FaultPlan,
    HangAt,
    StallWindow,
)

__all__ = ["LinkProfile", "ChaosProxy"]

Address = Tuple[str, int]


@dataclass(frozen=True)
class LinkProfile:
    """Stochastic wire behaviour (rates per datagram, delays in seconds)."""

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0  # fixed one-way latency added to every datagram
    jitter: float = 0.0  # extra uniform([0, jitter)) latency
    reorder_hold: float = 0.02  # how long a reordered datagram is held back
    duplicate_gap: float = 0.005  # spacing quantum for duplicate copies

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate {rate} outside [0, 1]")
        if self.duplicate >= 1.0:
            # Copy counts are geometric (each copy re-flips), so p=1 would
            # mean an infinite duplicate train for every datagram.
            raise ValueError("duplicate rate must be < 1")
        for name in ("delay", "jitter", "reorder_hold", "duplicate_gap"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def is_clean(self) -> bool:
        return not (self.drop or self.duplicate or self.reorder
                    or self.delay or self.jitter)


@dataclass
class ProxyStats:
    """Wire-fault accounting (what the scenario report surfaces)."""

    observed: int = 0
    forwarded: int = 0
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    stalled: int = 0
    foreign: int = 0  # datagrams rejected by the identifier/length peek
    by_kind: Dict[str, int] = field(default_factory=dict)
    #: Datagrams observed per lane id on a multi-lane wire (structural
    #: framing info, still no content decode); empty on a classic wire.
    by_lane: Dict[int, int] = field(default_factory=dict)


class _ProxySide(asyncio.DatagramProtocol):
    """One of the proxy's two sockets; tags arrivals with their channel."""

    def __init__(self, proxy: "ChaosProxy", channel: ChannelId) -> None:
        self._proxy = proxy
        self._channel = channel
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self._proxy._on_datagram(self._channel, bytes(data))


class ChaosProxy:
    """In-path UDP relay applying scripted and stochastic wire faults.

    Lifecycle: ``await start()`` binds both sockets (ephemeral loopback
    ports), ``connect()`` tells the proxy where the stations live, and
    ``close()`` tears the relay down (pending delayed sends are dropped).
    """

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        profile: Optional[LinkProfile] = None,
        rng: Optional[RandomSource] = None,
        on_crash: Optional[Callable[[str, int, Optional[int]], None]] = None,
        on_abort: Optional[Callable[[int], None]] = None,
        on_corrupt: Optional[Callable[[CorruptAt, int, Optional[int]], None]] = None,
        wire: str = "classic",
        pool: Optional[BufferPool] = None,
    ) -> None:
        if wire not in ("classic", "batched"):
            raise ValueError(f"unknown wire mode {wire!r}")
        self.plan = plan if plan is not None else FaultPlan()
        self.profile = profile if profile is not None else LinkProfile()
        self._rng = rng if rng is not None else RandomSource(0)
        self._on_crash = on_crash
        self._on_abort = on_abort
        self._on_corrupt = on_corrupt
        self.wire = wire
        self._pool = pool
        self.stats = ProxyStats()
        self._turn = 0
        self._closed = False
        self._tm_addr: Optional[Address] = None
        self._rm_addr: Optional[Address] = None
        self._t_side = _ProxySide(self, ChannelId.T_TO_R)  # faces the TM
        self._r_side = _ProxySide(self, ChannelId.R_TO_T)  # faces the RM
        self._t_io: Optional[BatchedDatagramIO] = None
        self._r_io: Optional[BatchedDatagramIO] = None
        self._last_forwarded: Optional[Tuple[ChannelId, bytes]] = None
        self._paused_until: Optional[float] = None  # None=open; inf=forever
        self._held: List[Tuple[ChannelId, bytes]] = []  # stalled/hung traffic
        # Scripted events indexed by turn (windows kept as lists).
        self._crashes: Dict[int, List[str]] = {}
        self._corrupts: Dict[int, List[CorruptAt]] = {}
        self._dups: Dict[int, List[DuplicateBurst]] = {}
        self._hangs: Dict[int, Optional[float]] = {}
        self._aborts: Dict[int, bool] = {}
        self._drops: List[DropWindow] = []
        self._stalls: List[StallWindow] = []
        for event in self.plan.events:
            if isinstance(event, CrashAt):
                self._crashes.setdefault(event.step, []).append(event.station)
            elif isinstance(event, CorruptAt):
                # Wipe-mode corruption IS a crash (same blank state, same
                # dead window), so it rides the crash trigger verbatim —
                # the live half of the wipe ≡ crash identity.
                if event.mode == "wipe":
                    self._crashes.setdefault(event.step, []).append(event.station)
                else:
                    self._corrupts.setdefault(event.step, []).append(event)
            elif isinstance(event, DuplicateBurst):
                self._dups.setdefault(event.step, []).append(event)
            elif isinstance(event, HangAt):
                self._hangs[event.step] = event.seconds
            elif isinstance(event, AbortAt):
                self._aborts[event.step] = True
            elif isinstance(event, DropWindow):
                self._drops.append(event)
            elif isinstance(event, StallWindow):
                self._stalls.append(event)

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        if self.wire == "batched":
            # Each side drains in chunks but dispatches datagrams to
            # _on_datagram ONE AT A TIME, so the scripted-event turn clock
            # ticks exactly as it does on the classic wire.  The two sides
            # share one flush group: a datagram drained on the T-facing
            # socket is forwarded out the R-facing one, and that borrowed
            # view must leave before the next drain chunk reuses it.
            self._t_io = BatchedDatagramIO(
                lambda view: self._on_datagram(ChannelId.T_TO_R, view),
                pool=self._pool,
            )
            self._r_io = BatchedDatagramIO(
                lambda view: self._on_datagram(ChannelId.R_TO_T, view),
                pool=self._pool,
            )
            await self._t_io.open()
            await self._r_io.open()
            link_flush_group([self._t_io, self._r_io])
            return
        loop = asyncio.get_running_loop()
        await loop.create_datagram_endpoint(
            lambda: self._t_side, local_addr=("127.0.0.1", 0)
        )
        await loop.create_datagram_endpoint(
            lambda: self._r_side, local_addr=("127.0.0.1", 0)
        )

    def connect(self, tm_addr: Address, rm_addr: Address) -> None:
        """Tell the proxy where to forward each direction's traffic."""
        self._tm_addr = tm_addr
        self._rm_addr = rm_addr

    @property
    def t_facing_address(self) -> Address:
        """Where the TM should send its datagrams."""
        if self._t_io is not None:
            return self._t_io.local_address
        return self._t_side.transport.get_extra_info("sockname")

    @property
    def r_facing_address(self) -> Address:
        """Where the RM should send its datagrams."""
        if self._r_io is not None:
            return self._r_io.local_address
        return self._r_side.transport.get_extra_info("sockname")

    @property
    def wire_ios(self) -> "List[BatchedDatagramIO]":
        """The batched sockets behind the relay ([] on a classic wire)."""
        return [io for io in (self._t_io, self._r_io) if io is not None]

    @property
    def turns(self) -> int:
        """Datagrams observed so far (the scripted-event clock)."""
        return self._turn

    def close(self) -> None:
        self._closed = True
        for io in (self._t_io, self._r_io):
            if io is not None:
                io.close()
        for side in (self._t_side, self._r_side):
            if side.transport is not None:
                side.transport.close()

    # -- the wire ----------------------------------------------------------------

    def _on_datagram(self, channel: ChannelId, data) -> None:
        # ``data`` is bytes on the classic wire, a memoryview into a reused
        # receive buffer on the batched one.  The hot path (peek → forward)
        # stays zero-copy; anything that must survive past this call —
        # stalled/hung holds, delayed forwards, the duplicate-burst replay
        # buffer — is copied at the point it escapes.
        if self._closed:
            return
        # Adversary visibility: identifier + length only, never a decode.
        try:
            info = peek_wire_info(data)
        except CodecError:
            self.stats.foreign += 1
            return
        self._turn += 1
        turn = self._turn
        self.stats.observed += 1
        self.stats.by_kind[info.kind] = self.stats.by_kind.get(info.kind, 0) + 1
        if info.lane is not None:
            self.stats.by_lane[info.lane] = (
                self.stats.by_lane.get(info.lane, 0) + 1
            )

        self._maybe_release_held(turn)
        self._fire_control_events(turn, info.lane)

        if self._scripted_drop(turn, channel):
            self.stats.dropped += 1
            return
        if self._in_stall(turn) or self._is_paused():
            self.stats.stalled += 1
            # Held datagrams outlive the drain chunk: copy a borrowed view.
            self._held.append(
                (channel, data if type(data) is bytes else bytes(data))
            )
            return
        if self.profile.drop and self._rng.bernoulli(self.profile.drop):
            self.stats.dropped += 1
            return

        delay = self._draw_delay()
        if self.profile.reorder and self._rng.bernoulli(self.profile.reorder):
            self.stats.reordered += 1
            delay += self.profile.reorder_hold
        self._forward(channel, data, delay)
        if self.profile.duplicate:
            # Geometric copy count from ONE uniform draw: each copy re-flips
            # the duplicate coin, so copies ~ Geometric(1-p) - 1, which
            # geometric_fast collapses into a single inverse-CDF draw.  This
            # changes the proxy's tape versus per-copy bernoulli() — fine
            # here, because live-wire schedules are timing-dependent and
            # carry no old-seed replay contract (unlike the simulator's
            # adversaries, which keep the per-trial form).  Copies are
            # capped so a hot tape cannot flood the loop.
            copies = self._rng.geometric_fast(1.0 - self.profile.duplicate) - 1
            for k in range(min(copies, 8)):
                self.stats.duplicated += 1
                self._forward(
                    channel, data, delay + (k + 1) * self.profile.duplicate_gap
                )
        self._fire_duplicate_bursts(turn)

    def _fire_control_events(self, turn: int, lane: Optional[int] = None) -> None:
        if turn in self._aborts:
            del self._aborts[turn]
            if self._on_abort is not None:
                self._on_abort(turn)
            return
        stations = self._crashes.pop(turn, None)
        if stations and self._on_crash is not None:
            for station in stations:
                self._on_crash(station, turn, lane)
        corrupts = self._corrupts.pop(turn, None)
        if corrupts and self._on_corrupt is not None:
            for event in corrupts:
                self._on_corrupt(event, turn, lane)
        seconds = -1.0
        if turn in self._hangs:
            seconds = self._hangs.pop(turn)  # type: ignore[assignment]
        if seconds != -1.0:
            loop = asyncio.get_running_loop()
            if seconds is None:
                self._paused_until = float("inf")
            else:
                self._paused_until = loop.time() + seconds
                loop.call_later(seconds, self._release_pause)

    def _release_pause(self) -> None:
        self._paused_until = None
        held, self._held = self._held, []
        for channel, data in held:
            self._forward(channel, data, 0.0)

    def _is_paused(self) -> bool:
        if self._paused_until is None:
            return False
        if self._paused_until == float("inf"):
            return True
        return asyncio.get_running_loop().time() < self._paused_until

    def _maybe_release_held(self, turn: int) -> None:
        """Flush stalled datagrams whose window has closed."""
        if not self._held or self._is_paused():
            return
        if any(w.start <= turn <= w.end for w in self._stalls):
            return
        held, self._held = self._held, []
        for channel, data in held:
            self._forward(channel, data, 0.0)

    def _scripted_drop(self, turn: int, channel: ChannelId) -> bool:
        for window in self._drops:
            if window.start <= turn <= window.end and (
                window.channel is None or window.channel == channel.value
            ):
                return True
        return False

    def _in_stall(self, turn: int) -> bool:
        return any(w.start <= turn <= w.end for w in self._stalls)

    def _fire_duplicate_bursts(self, turn: int) -> None:
        bursts = self._dups.pop(turn, None)
        if not bursts or self._last_forwarded is None:
            return
        channel, data = self._last_forwarded
        for burst in bursts:
            for k in range(burst.copies):
                self.stats.duplicated += 1
                self._forward(
                    channel, data,
                    (k + 1) * burst.spacing * self.profile.duplicate_gap,
                )

    def _draw_delay(self) -> float:
        delay = self.profile.delay
        if self.profile.jitter:
            delay += self.profile.jitter * self._rng.random_float()
        return delay

    def _forward(self, channel: ChannelId, data, delay: float) -> None:
        if delay > 0.0:
            if type(data) is not bytes:
                # The view dies with the drain chunk; a delayed forward
                # needs its own copy.
                data = bytes(data)
            asyncio.get_running_loop().call_later(
                delay, self._send_now, channel, data
            )
        else:
            self._send_now(channel, data)

    def _send_now(self, channel: ChannelId, data) -> None:
        if self._closed:
            return
        if channel is ChannelId.T_TO_R:
            dest, io, side = self._rm_addr, self._r_io, self._r_side
        else:
            dest, io, side = self._tm_addr, self._t_io, self._t_side
        if dest is None:
            return
        self.stats.forwarded += 1
        if self._dups:
            # The duplicate-burst replay buffer is only consulted while
            # scripted bursts remain; gating the (copying) bookkeeping on
            # that keeps the no-burst hot path zero-copy.
            self._last_forwarded = (
                channel, data if type(data) is bytes else bytes(data)
            )
        if io is not None:
            io.send(data, dest)
        elif side.transport is not None:
            side.transport.sendto(data, dest)

    def describe(self) -> str:
        profile = "clean" if self.profile.is_clean else (
            f"drop={self.profile.drop:g} dup={self.profile.duplicate:g} "
            f"reorder={self.profile.reorder:g}"
        )
        return f"chaos-proxy({len(self.plan.events)} scripted events, {profile})"
