"""Live deployment: the GHM protocol on real sockets under injected chaos.

The simulator (:mod:`repro.sim`) proves properties of the automata under a
scheduled adversary; this package redeploys the *same automata* as
concurrent asyncio datagram endpoints exchanging the canonical byte
encoding over loopback UDP, with an in-path chaos proxy playing the
adversary at wire level and a crash orchestrator delivering the paper's
amnesia crashes against a real clock.  Every externally visible action is
mirrored into the PR-2 streaming checkers, so live traces receive the same
Section 2.6 verdicts as simulated ones.

Layout:

* :mod:`repro.live.backoff` — jittered exponential poll backoff (the live
  pacing of the RM's RETRY obligation);
* :mod:`repro.live.proxy` — :class:`ChaosProxy`, compiling the campaign
  fault-plan schema plus a stochastic :class:`LinkProfile` into wire
  faults while honouring Section 2.3 adversary visibility (identifiers
  and lengths only);
* :mod:`repro.live.endpoints` — the TM/RM automata behind sockets, with
  crash-amnesia restarts;
* :mod:`repro.live.lanes` — K independent protocol instances striped over
  one socket pair (lane-framed wire, shared resequencer) for pipelined
  throughput past Axiom 1's one-message window;
* :mod:`repro.live.scenario` — scripted end-to-end runs with a hard
  wall-clock budget and a bounded give-up (UNRECONCILABLE, never a hang).
"""

from repro.live.backoff import AdaptiveBackoff, BackoffPolicy
from repro.live.endpoints import ReceiverEndpoint, TransmitterEndpoint
from repro.live.lanes import (
    LaneMetrics,
    LanedReceiverEndpoint,
    LanedTransmitterEndpoint,
)
from repro.live.proxy import ChaosProxy, LinkProfile, ProxyStats
from repro.live.scenario import (
    LiveRunReport,
    LiveScenario,
    LiveStatus,
    run_live_scenario,
    run_live_scenario_async,
)

__all__ = [
    "AdaptiveBackoff",
    "BackoffPolicy",
    "ChaosProxy",
    "LaneMetrics",
    "LanedReceiverEndpoint",
    "LanedTransmitterEndpoint",
    "LinkProfile",
    "LiveRunReport",
    "LiveScenario",
    "LiveStatus",
    "ProxyStats",
    "ReceiverEndpoint",
    "TransmitterEndpoint",
    "run_live_scenario",
    "run_live_scenario_async",
]
