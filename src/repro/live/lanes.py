"""Multi-lane live link: K protocol instances striped over one socket pair.

Axiom 1 makes each data link stop-and-wait at the message level, so the
single-lane live deployment (:mod:`repro.live.endpoints`) delivers one
message per ~2-RTT handshake however fast the wire is.  The remedy proved
in simulation by :mod:`repro.extensions.striping` — run K *independent*
link instances and resequence — is deployed here on a real wire:

* :class:`LanedTransmitterEndpoint` / :class:`LanedReceiverEndpoint` hold
  K independent :class:`~repro.core.transmitter.Transmitter` /
  :class:`~repro.core.receiver.Receiver` automata ("lanes") behind **one**
  shared UDP socket each; every datagram carries a 1-byte lane id in front
  of the canonical packet encoding (:func:`~repro.core.packets.
  encode_lane_frame`), so the socket pair is shared but the protocol
  instances never interact.
* Messages are striped round-robin: global sequence ``s`` rides lane
  ``s % K`` under a ``(sequence, attempt)`` stripe header, and the
  receiver's shared :class:`~repro.extensions.striping.Resequencer`
  restores global order.  The ``attempt`` field makes a crash-resubmitted
  slot a *distinct* message value (Axiom 2) without touching the payload
  the resequencer releases.
* Correctness composes because nothing is weakened per lane: each lane is
  a complete instance of the paper's protocol with its own nonces, its own
  crash-amnesia (a lane crash wipes exactly that automaton and its
  timers), its own jittered poll backoff, and its own
  :class:`~repro.checkers.live.LiveEventLog` — so every lane independently
  earns Section 2.6 streaming verdicts, and the aggregate is their
  conjunction (:func:`~repro.checkers.report.merge_safety_reports`).

Adversary visibility stays structural: the chaos proxy peeks the lane id
and identifier octet through :func:`~repro.core.packets.peek_wire_info` —
faults can *target a lane* but never read contents.

Hot path: each lane's outbound frames reuse the interned one-byte lane
prefix (no per-send frame buffer allocation beyond the unavoidable
concat), and RETRY polls go through a per-lane
:class:`~repro.core.packets.PollEncoder`, which caches the lane byte and
the encoded ``(ρ, τ)`` prefix and re-packs only the retry counter.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Sequence

from repro.checkers.live import LiveEventLog
from repro.checkers.report import SafetyReport, merge_safety_reports
from repro.core.events import (
    CRASH_R,
    CRASH_T,
    OK,
    RETRY,
    ChannelId,
    Corruption,
    EmitOk,
    EmitPacket,
    EmitReceiveMsg,
    StationOutput,
    make_pkt_delivered,
    make_pkt_sent,
    make_receive_msg,
    make_send_msg,
)
from repro.core.exceptions import CodecError
from repro.core.packets import (
    DataPacket,
    PollEncoder,
    PollPacket,
    decode_packet,
    lane_prefix,
)
from repro.core.protocol import DataLink
from repro.core.random_source import RandomSource
from repro.core.receiver import Receiver
from repro.core.transmitter import Transmitter
from repro.extensions.striping import Resequencer
from repro.live.backoff import AdaptiveBackoff
from repro.live.endpoints import _SocketBase, Address

__all__ = [
    "LaneMetrics",
    "LanedTransmitterEndpoint",
    "LanedReceiverEndpoint",
    "frame_stripe",
    "unframe_stripe",
]

#: Stripe header: global sequence number + resubmission attempt.  The
#: attempt is part of the *framing*, not the payload, so a slot re-queued
#: after a transmitter-lane crash is a fresh message value on the wire
#: (Axiom 2: no value is ever sent twice) while the resequenced stream
#: still releases the original payload bytes.
_STRIPE = struct.Struct(">QH")


def frame_stripe(sequence: int, attempt: int, payload: bytes) -> bytes:
    """Wrap a payload in the live stripe header."""
    return _STRIPE.pack(sequence, attempt) + payload


def unframe_stripe(message: bytes) -> "tuple[int, int, bytes]":
    """Split a delivered lane message into ``(sequence, attempt, payload)``."""
    if len(message) < _STRIPE.size:
        raise CodecError("truncated stripe header")
    sequence, attempt = _STRIPE.unpack_from(message, 0)
    return sequence, attempt, message[_STRIPE.size :]


@dataclass(frozen=True)
class LaneMetrics:
    """Per-lane counters for one finished (or running) laned deployment."""

    lane: int
    oks: int  # handshakes completed (messages OK'd on this lane)
    resubmissions: int  # slots re-queued after a TM-lane crash
    deliveries: int  # receive_msg events on this lane (pre-resequencing)
    polls: int  # RETRY polls this lane sent
    crashes_t: int
    crashes_r: int
    events: int  # events this lane's log has checked
    corruptions_t: int = 0  # in-place state scrambles on this TM lane
    corruptions_r: int = 0  # in-place state scrambles on this RM lane


class _TmLane:
    """One transmitter automaton plus its lane-local volatile bookkeeping."""

    __slots__ = (
        "lane", "tm", "log", "prefix", "queue", "current", "oks",
        "resubmissions", "crashes", "corruptions", "dead", "out_ids",
        "in_ids", "restart_handle",
    )

    def __init__(self, lane: int, tm: Transmitter, log: LiveEventLog) -> None:
        self.lane = lane
        self.tm = tm
        self.log = log
        self.prefix = lane_prefix(lane)  # interned; reused on every send
        self.queue: Deque["tuple[int, int, bytes]"] = deque()  # (seq, attempt, payload)
        self.current: Optional["tuple[int, int, bytes]"] = None
        self.oks = 0
        self.resubmissions = 0
        self.crashes = 0
        self.corruptions = 0
        self.dead = False
        self.out_ids = 0
        self.in_ids = 0
        self.restart_handle = None


class _RmLane:
    """One receiver automaton plus its lane-local volatile bookkeeping."""

    __slots__ = (
        "lane", "rm", "log", "backoff", "encoder", "poll_handle",
        "restart_handle", "polls", "deliveries", "crashes", "corruptions",
        "dead", "out_ids", "in_ids",
    )

    def __init__(
        self, lane: int, rm: Receiver, log: LiveEventLog,
        backoff: AdaptiveBackoff,
    ) -> None:
        self.lane = lane
        self.rm = rm
        self.log = log
        self.backoff = backoff
        self.encoder = PollEncoder(lane)  # caches lane byte + (ρ, τ) prefix
        self.poll_handle = None
        self.restart_handle = None
        self.polls = 0
        self.deliveries = 0
        self.crashes = 0
        self.corruptions = 0
        self.dead = False
        self.out_ids = 0
        self.in_ids = 0


class _LanedBase(_SocketBase):
    """Shared datagram dispatch for the laned endpoints."""

    def __init__(self, proxy_addr: Address, lane_count: int,
                 restart_delay: float, wire: str = "classic",
                 pool=None) -> None:
        if lane_count < 1:
            raise ValueError("need at least one lane")
        super().__init__(proxy_addr, wire=wire, pool=pool)
        self.lane_count = lane_count
        self.restart_delay = restart_delay
        self.malformed = 0
        self.foreign_lanes = 0  # lane ids outside [0, K) or unframed traffic
        self.dropped_while_dead = 0

    # Laned frames are split by hand here (rather than through
    # decode_lane_frame) so a foreign lane id and a malformed body are
    # counted separately; body decode still goes through decode_packet,
    # preserving strict-prefix rejection lane by lane.  ``data`` may be a
    # memoryview into a reused receive buffer: the lane byte is an index
    # read and the body slice decodes zero-copy.
    def _on_datagram(self, data) -> None:
        if self._closed:
            return
        if len(data) < 2 or data[0] >= self.lane_count:
            self.foreign_lanes += 1
            return
        lane = data[0]
        try:
            packet = decode_packet(data[1:])
        except CodecError:
            self.malformed += 1
            return
        if not isinstance(packet, self._expected_packet):
            self.malformed += 1
            return
        self._handle_lane_packet(lane, packet)

    # subclass hooks
    _expected_packet: type = object

    def _handle_lane_packet(self, lane: int, packet) -> None:
        raise NotImplementedError


class LanedTransmitterEndpoint(_LanedBase):
    """K transmitter lanes draining a striped workload over one socket.

    The global payload stream is striped round-robin at construction;
    each lane then runs the ordinary one-slot-at-a-time discipline
    (Axiom 1 *per lane*).  ``on_ok`` fires per acknowledged slot,
    ``on_done`` once when every slot on every lane is OK'd.
    """

    outbound = ChannelId.T_TO_R
    _expected_packet = PollPacket

    def __init__(
        self,
        links: Sequence[DataLink],
        logs: Sequence[LiveEventLog],
        proxy_addr: Address,
        payloads: Sequence[bytes],
        on_ok: Optional[Callable[[], None]] = None,
        on_done: Optional[Callable[[], None]] = None,
        restart_delay: float = 0.02,
        wire: str = "classic",
        pool=None,
    ) -> None:
        super().__init__(proxy_addr, len(links), restart_delay,
                         wire=wire, pool=pool)
        if len(logs) != len(links):
            raise ValueError("need one event log per lane")
        self._lanes = [
            _TmLane(i, link.transmitter, log)
            for i, (link, log) in enumerate(zip(links, logs))
        ]
        for sequence, payload in enumerate(payloads):
            self._lanes[sequence % self.lane_count].queue.append(
                (sequence, 0, payload)
            )
        self.total_slots = len(payloads)
        self._on_ok = on_ok
        self._on_done = on_done

    async def start(self) -> None:
        await super().start()
        for lane in self._lanes:
            self._maybe_send_next(lane)

    # -- aggregate views ---------------------------------------------------------

    @property
    def oks(self) -> int:
        return sum(lane.oks for lane in self._lanes)

    @property
    def resubmissions(self) -> int:
        return sum(lane.resubmissions for lane in self._lanes)

    @property
    def crashes(self) -> int:
        return sum(lane.crashes for lane in self._lanes)

    @property
    def all_delivered(self) -> bool:
        return self.oks >= self.total_slots

    @property
    def corruptions(self) -> int:
        return sum(lane.corruptions for lane in self._lanes)

    def lane_metrics(self) -> List[LaneMetrics]:
        return [
            LaneMetrics(
                lane=lane.lane, oks=lane.oks,
                resubmissions=lane.resubmissions, deliveries=0, polls=0,
                crashes_t=lane.crashes, crashes_r=0,
                events=lane.log.events_seen,
                corruptions_t=lane.corruptions,
            )
            for lane in self._lanes
        ]

    # -- per-lane protocol drive -------------------------------------------------

    def _maybe_send_next(self, lane: _TmLane) -> None:
        if lane.dead or self._closed or lane.current is not None:
            return
        if lane.tm.busy or not lane.queue:
            return
        slot = lane.queue.popleft()
        lane.current = slot
        value = frame_stripe(slot[0], slot[1], slot[2])
        lane.log.record(make_send_msg(value))
        self._dispatch(lane, lane.tm.send_msg(value))

    def _dispatch(self, lane: _TmLane, outputs: List[StationOutput]) -> None:
        for output in outputs:
            if isinstance(output, EmitPacket):
                self._send_packet(lane, output.packet)
            elif isinstance(output, EmitOk):
                lane.log.record(OK)
                lane.oks += 1
                lane.current = None
                if self._on_ok is not None:
                    self._on_ok()
                if self.all_delivered:
                    if self._on_done is not None:
                        self._on_done()
                else:
                    self._maybe_send_next(lane)

    def _send_packet(self, lane: _TmLane, packet) -> None:
        lane.out_ids += 1
        # The +8 bits are the lane-frame byte: length as the wire (and the
        # adversary) sees the datagram.
        lane.log.record(
            make_pkt_sent(self.outbound, lane.out_ids,
                          packet.wire_length_bits + 8)
        )
        self._send_wire(packet, prefix=lane.prefix)

    def _handle_lane_packet(self, lane_id: int, packet: PollPacket) -> None:
        lane = self._lanes[lane_id]
        if lane.dead:
            self.dropped_while_dead += 1
            return
        lane.in_ids += 1
        lane.log.record(make_pkt_delivered(ChannelId.R_TO_T, lane.in_ids))
        self._dispatch(lane, lane.tm.on_receive_pkt(packet))

    # -- crash-amnesia (per lane) ------------------------------------------------

    def crash_lane(self, lane_id: int) -> None:
        """Amnesia-crash one lane; the others keep their handshakes."""
        lane = self._lanes[lane_id]
        if lane.dead or self._closed:
            return
        lane.dead = True
        lane.crashes += 1
        self._cancel_timer(lane.restart_handle)
        lane.log.record(CRASH_T)
        lane.tm.crash()
        if lane.current is not None:
            # The in-flight framed value died with the memory; re-queue the
            # slot under the next attempt — a distinct wire value (Axiom 2)
            # carrying the same payload and sequence number.
            sequence, attempt, payload = lane.current
            lane.current = None
            lane.resubmissions += 1
            lane.queue.appendleft((sequence, attempt + 1, payload))
        lane.restart_handle = self._call_later(
            self.restart_delay, lambda: self._restart_lane(lane)
        )

    def crash(self, lane: Optional[int] = None) -> None:
        """Crash one lane, or the whole host (every lane) if none given."""
        if lane is not None:
            self.crash_lane(lane)
        else:
            for i in range(self.lane_count):
                self.crash_lane(i)

    def corrupt_lane(self, lane_id: int, seed: int,
                     fields: Optional[Sequence[str]] = None) -> "tuple":
        """Scramble one TM lane's state in place; the lane keeps running."""
        lane = self._lanes[lane_id]
        if lane.dead or self._closed:
            return ()
        scrambled = lane.tm.corrupt(RandomSource(seed), fields)
        lane.corruptions += 1
        lane.log.record(Corruption(station="T", fields=scrambled, seed=seed))
        if not lane.tm.busy and lane.current is not None:
            sequence, attempt, payload = lane.current
            lane.current = None
            lane.resubmissions += 1
            lane.queue.appendleft((sequence, attempt + 1, payload))
        self._maybe_send_next(lane)
        return scrambled

    def corrupt(self, seed: int, lane: Optional[int] = None,
                fields: Optional[Sequence[str]] = None) -> None:
        """Corrupt one lane, or every lane (seeds split per lane) if none given."""
        if lane is not None:
            self.corrupt_lane(lane, seed, fields)
        else:
            for i in range(self.lane_count):
                self.corrupt_lane(i, seed + i, fields)

    def _restart_lane(self, lane: _TmLane) -> None:
        lane.restart_handle = None
        if self._closed:
            return
        lane.dead = False
        self._maybe_send_next(lane)


class LanedReceiverEndpoint(_LanedBase):
    """K receiver lanes feeding one shared resequencer over one socket.

    Each lane runs its own poll chain on its own backoff schedule (jitter
    decorrelates the lanes, so polls spread over the RTT instead of
    bursting).  Deliveries carry the stripe header; the shared
    :class:`Resequencer` releases the longest in-order payload run, and
    ``on_delivery`` fires once per *released* payload — i.e. in global
    stream order, the laned analogue of the single-lane delivery callback.
    """

    outbound = ChannelId.R_TO_T
    _expected_packet = DataPacket

    def __init__(
        self,
        links: Sequence[DataLink],
        logs: Sequence[LiveEventLog],
        proxy_addr: Address,
        backoffs: Sequence[AdaptiveBackoff],
        on_progress: Optional[Callable[[], None]] = None,
        on_delivery: Optional[Callable[[bytes], None]] = None,
        restart_delay: float = 0.02,
        wire: str = "classic",
        pool=None,
    ) -> None:
        super().__init__(proxy_addr, len(links), restart_delay,
                         wire=wire, pool=pool)
        if len(logs) != len(links) or len(backoffs) != len(links):
            raise ValueError("need one event log and one backoff per lane")
        self._lanes = [
            _RmLane(i, link.receiver, log, backoff)
            for i, (link, log, backoff) in enumerate(zip(links, logs, backoffs))
        ]
        self.resequencer = Resequencer()
        self._on_progress = on_progress
        self._on_delivery = on_delivery

    async def start(self) -> None:
        await super().start()
        for lane in self._lanes:
            self._poll_tick(lane)

    # -- aggregate views ---------------------------------------------------------

    @property
    def delivered(self) -> List[bytes]:
        """The resequenced global stream (payloads, stripe header removed)."""
        return self.resequencer.delivered_in_order

    @property
    def deliveries(self) -> int:
        """Lane-level receive_msg count (before resequencing/dedup)."""
        return sum(lane.deliveries for lane in self._lanes)

    @property
    def crashes(self) -> int:
        return sum(lane.crashes for lane in self._lanes)

    @property
    def polls_without_progress(self) -> int:
        """Give-up input: the *least*-stuck lane's fruitless-poll count.

        Finished lanes keep polling without progress forever, so the max
        (or any single lane's counter) would fire spurious give-ups while
        other lanes still advance; the minimum only decays once every lane
        has stopped progressing.
        """
        return min(
            lane.backoff.attempts_without_progress for lane in self._lanes
        )

    @property
    def corruptions(self) -> int:
        return sum(lane.corruptions for lane in self._lanes)

    def lane_metrics(self) -> List[LaneMetrics]:
        return [
            LaneMetrics(
                lane=lane.lane, oks=0, resubmissions=0,
                deliveries=lane.deliveries, polls=lane.polls,
                crashes_t=0, crashes_r=lane.crashes,
                events=lane.log.events_seen,
                corruptions_r=lane.corruptions,
            )
            for lane in self._lanes
        ]

    def safety_report(self) -> SafetyReport:
        """Aggregate Section 2.6 safety verdict across all lane logs."""
        return merge_safety_reports(
            [lane.log.safety_report() for lane in self._lanes]
        )

    # -- per-lane poll chain -----------------------------------------------------

    def _poll_tick(self, lane: _RmLane) -> None:
        lane.poll_handle = None
        if lane.dead or self._closed:
            return
        self._send_poll(lane)
        lane.poll_handle = self._call_later(
            lane.backoff.next_delay(), lambda: self._poll_tick(lane)
        )

    def _send_poll(self, lane: _RmLane) -> None:
        if lane.dead or self._closed:
            return
        lane.log.record(RETRY)
        lane.polls += 1
        for output in lane.rm.retry():
            if isinstance(output, EmitPacket):
                self._send_packet(lane, output.packet)

    def _send_packet(self, lane: _RmLane, packet) -> None:
        lane.out_ids += 1
        lane.log.record(
            make_pkt_sent(self.outbound, lane.out_ids,
                          packet.wire_length_bits + 8)
        )
        if type(packet) is PollPacket:
            # The encoder's cached prefix covers the lane byte + (ρ, τ).
            self._send_wire(packet, prefix=lane_prefix(lane.lane),
                            encoder=lane.encoder)
        else:
            self._send_wire(packet, prefix=lane_prefix(lane.lane))

    def _handle_lane_packet(self, lane_id: int, packet: DataPacket) -> None:
        lane = self._lanes[lane_id]
        if lane.dead:
            self.dropped_while_dead += 1
            return
        lane.in_ids += 1
        lane.log.record(make_pkt_delivered(ChannelId.T_TO_R, lane.in_ids))
        tau_before = lane.rm.tau
        outputs = lane.rm.on_receive_pkt(packet)
        progressed = False
        for output in outputs:
            if isinstance(output, EmitReceiveMsg):
                lane.log.record(make_receive_msg(output.message))
                lane.deliveries += 1
                progressed = True
                self._accept_delivery(output.message)
        if not progressed and lane.rm.tau != tau_before:
            progressed = True  # nonce extended mid-handshake
        if progressed:
            lane.backoff.note_progress()
            if self._on_progress is not None:
                self._on_progress()
            # Ack immediately and restart this lane's chain at the reset
            # backoff; sibling lanes' chains are untouched.
            self._cancel_timer(lane.poll_handle)
            lane.poll_handle = None
            self._poll_tick(lane)

    def _accept_delivery(self, message: bytes) -> None:
        sequence, _attempt, payload = unframe_stripe(message)
        released = self.resequencer.accept(sequence, payload)
        if self._on_delivery is not None:
            for ready in released:
                self._on_delivery(ready)

    # -- crash-amnesia (per lane) ------------------------------------------------

    def crash_lane(self, lane_id: int) -> None:
        """Amnesia-crash one lane; sibling poll chains keep running."""
        lane = self._lanes[lane_id]
        if lane.dead or self._closed:
            return
        lane.dead = True
        lane.crashes += 1
        # The lane's volatile timers die with its memory — a poll scheduled
        # before the crash must never fire into the restarted automaton.
        self._cancel_timer(lane.poll_handle)
        lane.poll_handle = None
        self._cancel_timer(lane.restart_handle)
        lane.log.record(CRASH_R)
        lane.rm.crash()
        lane.backoff.reset()
        lane.restart_handle = self._call_later(
            self.restart_delay, lambda: self._restart_lane(lane)
        )

    def crash(self, lane: Optional[int] = None) -> None:
        """Crash one lane, or the whole host (every lane) if none given."""
        if lane is not None:
            self.crash_lane(lane)
        else:
            for i in range(self.lane_count):
                self.crash_lane(i)

    def corrupt_lane(self, lane_id: int, seed: int,
                     fields: Optional[Sequence[str]] = None) -> "tuple":
        """Scramble one RM lane's state in place; its poll chain keeps running."""
        lane = self._lanes[lane_id]
        if lane.dead or self._closed:
            return ()
        scrambled = lane.rm.corrupt(RandomSource(seed), fields)
        lane.corruptions += 1
        lane.log.record(Corruption(station="R", fields=scrambled, seed=seed))
        return scrambled

    def corrupt(self, seed: int, lane: Optional[int] = None,
                fields: Optional[Sequence[str]] = None) -> None:
        """Corrupt one lane, or every lane (seeds split per lane) if none given."""
        if lane is not None:
            self.corrupt_lane(lane, seed, fields)
        else:
            for i in range(self.lane_count):
                self.corrupt_lane(i, seed + i, fields)

    def _restart_lane(self, lane: _RmLane) -> None:
        lane.restart_handle = None
        if self._closed:
            return
        lane.dead = False
        self._poll_tick(lane)
