"""Scripted live scenarios: stations + chaos proxy + crash orchestration.

:func:`run_live_scenario` is the live analogue of one supervised campaign
run.  It wires a real deployment on the loopback interface —

    TM endpoint  ⇄  chaos proxy  ⇄  RM endpoint

— runs a message workload through it under scripted and stochastic wire
faults, crash-kills stations on cue, and reduces the whole thing to a
:class:`LiveRunReport` whose Section 2.6 verdicts come from the same
streaming checkers the simulator uses.

Three guarantees make the harness CI-safe:

* **hard wall-clock budget** — the entire scenario runs under a deadline;
  whatever happens on the wire, the coroutine returns;
* **bounded give-up** — a supervisor task watches for progress (deliveries,
  nonce updates, OKs); if none lands within ``give_up_idle`` seconds, or
  the RM's backoff has decayed through ``give_up_polls`` fruitless polls,
  the run is torn down with status :data:`LiveStatus.UNRECONCILABLE` — the
  paper's ε-probability bad case surfaced as graceful degradation instead
  of a hang;
* **deterministic teardown** — tasks are cancelled and sockets closed in
  ``finally``, so a failing scenario cannot leak file descriptors or tasks
  into the next test.

Crash orchestration reuses the campaign fault-plan schema: a
``{"kind": "crash", "step": N, "station": "T"}`` event kills the named
station when the proxy observes its N-th datagram — necessarily
mid-handshake when traffic is flowing — and cold-restarts it with empty
volatile state after ``restart_delay`` seconds.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.checkers.live import LiveEventLog
from repro.checkers.report import SafetyReport, merge_safety_reports
from repro.checkers.stabilization import StabilizationReport
from repro.checkers.streaming import StreamingChecks
from repro.core.protocol import make_data_link
from repro.core.random_source import RandomSource, split_seed
from repro.live.backoff import AdaptiveBackoff, BackoffPolicy
from repro.live.endpoints import ReceiverEndpoint, TransmitterEndpoint
from repro.live.lanes import (
    LaneMetrics,
    LanedReceiverEndpoint,
    LanedTransmitterEndpoint,
)
from repro.live.proxy import ChaosProxy, LinkProfile, ProxyStats
from repro.live.wire import (
    BufferPool,
    WireStats,
    link_flush_group,
    merge_wire_stats,
)
from repro.resilience.faultplan import CorruptAt, FaultPlan
from repro.util.tables import render_table

__all__ = ["LiveStatus", "LiveScenario", "LiveRunReport", "run_live_scenario",
           "run_live_scenario_async", "resolve_loop_backend"]


class LiveStatus(str, Enum):
    """Terminal status of one live scenario."""

    DELIVERED = "delivered"  # every workload slot OK'd
    STABILIZED = "stabilized"  # delivered *and* reconverged after corruption
    UNRECONCILABLE = "unreconcilable"  # bounded give-up fired (no hang)
    ABORTED = "aborted"  # a scripted abort tore the harness down


@dataclass(frozen=True)
class LiveScenario:
    """Everything one live run needs (all wall-clock knobs in seconds)."""

    messages: int = 50
    seed: int = 0
    epsilon: float = 2.0 ** -16
    profile: LinkProfile = field(default_factory=LinkProfile)
    plan: FaultPlan = field(default_factory=FaultPlan)
    poll: BackoffPolicy = field(default_factory=BackoffPolicy)
    budget: float = 60.0  # hard wall-clock ceiling for the whole run
    give_up_idle: float = 5.0  # no-progress deadline
    give_up_polls: int = 0  # fruitless-poll bound (0 = idle deadline only)
    restart_delay: float = 0.02  # how long a crashed station stays down
    tail_size: int = 4096  # forensic event tail retained by the log
    lanes: int = 1  # protocol instances striped over the socket pair
    stabilization_window: int = 8  # clean progress events ending probation
    #: "batched" = zero-copy drain/flush sockets (PROTOCOL.md §15);
    #: "classic" = the PR-4/PR-5 one-datagram-per-wakeup asyncio transports.
    #: Verdicts are wire-mode independent; "classic" exists for the bench
    #: comparison and as a fallback switch.
    wire: str = "batched"
    label: str = ""

    def __post_init__(self) -> None:
        if self.messages < 1:
            raise ValueError("messages must be >= 1")
        if self.budget <= 0.0 or self.give_up_idle <= 0.0:
            raise ValueError("budget and give_up_idle must be positive")
        if self.give_up_polls < 0:
            raise ValueError("give_up_polls must be >= 0")
        if self.lanes < 1:
            raise ValueError("lanes must be >= 1")
        if self.stabilization_window < 1:
            raise ValueError("stabilization_window must be >= 1")
        if self.wire not in ("batched", "classic"):
            raise ValueError(f"unknown wire mode {self.wire!r}")

    @property
    def wants_stabilization(self) -> bool:
        """True iff the plan injects in-place state corruption."""
        return any(
            isinstance(event, CorruptAt) and event.mode == "scramble"
            for event in self.plan.events
        )


@dataclass
class LiveRunReport:
    """One live run, reduced to verdicts plus wire/crash accounting."""

    scenario: LiveScenario
    status: LiveStatus
    reason: str
    safety: SafetyReport
    liveness_passed: bool
    deliveries: int
    oks: int
    resubmissions: int
    crashes_t: int
    crashes_r: int
    malformed_datagrams: int
    events_seen: int
    wall_seconds: float
    proxy: ProxyStats
    lanes: int = 1
    lane_metrics: List[LaneMetrics] = field(default_factory=list)
    resequencer_high_water: int = 0  # worst reorder-buffer depth observed
    resequencer_duplicates: int = 0  # crash-resubmission replays dropped
    in_order_delivered: int = 0  # resequenced global-stream length
    corruptions_t: int = 0  # in-place state scrambles applied to the TM
    corruptions_r: int = 0  # in-place state scrambles applied to the RM
    stabilization: Optional[StabilizationReport] = None
    wire: str = "classic"  # which wire layer carried the run
    loop_backend: str = "asyncio"  # event loop implementation used
    wire_stats: Optional[WireStats] = None  # batching counters (batched wire)
    pool_outstanding: int = 0  # pooled buffers still unreturned at teardown
    pool_allocated: int = 0  # pooled buffers ever created
    pool_high_water: int = 0  # worst simultaneous pooled-buffer demand
    delivered_stream: List[bytes] = field(repr=False, default_factory=list)
    forensic_tail: List[str] = field(repr=False, default_factory=list)

    @property
    def completed(self) -> bool:
        # STABILIZED is DELIVERED that additionally survived state
        # corruption — both mean the whole workload was OK'd.
        return self.status in (LiveStatus.DELIVERED, LiveStatus.STABILIZED)

    @property
    def ok(self) -> bool:
        """Delivered, safe, and live — the CI gate."""
        return self.completed and self.safety.passed and self.liveness_passed

    def render(self) -> str:
        summary = render_table(
            ["metric", "value"],
            [
                ["scenario", self.scenario.label or "-"],
                ["status", self.status.value],
                ["reason", self.reason],
                ["messages OK", f"{self.oks}/{self.scenario.messages}"],
                ["deliveries", self.deliveries],
                ["slot resubmissions", self.resubmissions],
                ["crashes (T/R)", f"{self.crashes_t}/{self.crashes_r}"],
                ["events checked", self.events_seen],
                ["wall seconds", f"{self.wall_seconds:.2f}"],
                ["wire", f"{self.wire} ({self.loop_backend})"],
            ]
            + (
                [
                    [
                        "wire batches (recv/send)",
                        f"{self.wire_stats.recv_batches}/"
                        f"{self.wire_stats.send_batches}"
                        + (" mmsg" if self.wire_stats.mmsg else ""),
                    ],
                    [
                        "buffer pool",
                        f"{self.pool_allocated} allocated, "
                        f"{self.pool_outstanding} outstanding, "
                        f"high-water {self.pool_high_water}",
                    ],
                ]
                if self.wire_stats is not None
                else []
            )
            + (
                [
                    [
                        "corruptions (T/R)",
                        f"{self.corruptions_t}/{self.corruptions_r}",
                    ],
                    [
                        "stabilization",
                        (
                            "-"
                            if self.stabilization is None
                            else f"{self.stabilization.converged}/"
                            f"{self.stabilization.corruptions} converged "
                            f"(window={self.stabilization.window})"
                        ),
                    ],
                ]
                if self.corruptions_t or self.corruptions_r
                else []
            )
            + (
                [
                    ["lanes", self.lanes],
                    ["in-order stream", self.in_order_delivered],
                    ["reseq high-water", self.resequencer_high_water],
                    ["reseq duplicates", self.resequencer_duplicates],
                ]
                if self.lanes > 1
                else []
            ),
            title="live scenario",
        )
        wire = render_table(
            ["observed", "forwarded", "dropped", "duplicated", "reordered",
             "stalled", "foreign"],
            [[self.proxy.observed, self.proxy.forwarded, self.proxy.dropped,
              self.proxy.duplicated, self.proxy.reordered, self.proxy.stalled,
              self.proxy.foreign]],
            title="wire (chaos proxy)",
        )
        checks = render_table(
            ["condition", "verdict", "trials"],
            [
                [c.condition, "OK" if c.passed else "VIOLATED", c.trials]
                for c in self.safety.all_reports
            ]
            + [["liveness", "OK" if self.liveness_passed else "VIOLATED", "-"]],
            title="Section 2.6 conditions (live trace)",
        )
        parts = [summary, "", wire, "", checks]
        if self.lane_metrics:
            parts += [
                "",
                render_table(
                    ["lane", "OKs", "resubs", "deliveries", "polls",
                     "crashes T/R", "events"],
                    [
                        [m.lane, m.oks, m.resubmissions, m.deliveries,
                         m.polls, f"{m.crashes_t}/{m.crashes_r}", m.events]
                        for m in self.lane_metrics
                    ],
                    title="per-lane metrics",
                ),
            ]
        return "\n".join(parts)


async def run_live_scenario_async(scenario: LiveScenario) -> LiveRunReport:
    """Execute one scripted live scenario end to end (see module docstring)."""
    loop = asyncio.get_running_loop()
    root = RandomSource(scenario.seed)
    laned = scenario.lanes > 1
    link_seed = split_seed(scenario.seed, "live-link")

    done = asyncio.Event()
    outcome = {"status": LiveStatus.UNRECONCILABLE, "reason": ""}
    progress = {"at": loop.time()}

    def finish(status: LiveStatus, reason: str) -> None:
        if not done.is_set():
            outcome["status"] = status
            outcome["reason"] = reason
            done.set()

    def note_progress() -> None:
        progress["at"] = loop.time()

    wants_stabilization = scenario.wants_stabilization

    def _make_log() -> LiveEventLog:
        # Corruption plans get the stabilization-aware suite so Section 2.6
        # accounting is suspended during probation windows; everything else
        # keeps the plain (cheaper) suite.
        checks = None
        if wants_stabilization:
            checks = StreamingChecks(
                timed=True,
                stabilization=True,
                stabilization_window=scenario.stabilization_window,
            )
        return LiveEventLog(checks=checks, tail_size=scenario.tail_size)

    # One buffer pool for the whole deployment: every batched socket draws
    # send buffers from it, so its counters are the run-wide leak check.
    batched = scenario.wire == "batched"
    pool = BufferPool() if batched else None
    proxy = ChaosProxy(
        plan=scenario.plan,
        profile=scenario.profile,
        rng=root.fork("chaos"),
        on_crash=lambda station, turn, lane: _crash_station(station, turn, lane),
        on_abort=lambda turn: finish(
            LiveStatus.ABORTED, f"scripted abort at wire turn {turn}"
        ),
        on_corrupt=lambda event, turn, lane: _corrupt_station(event, lane),
        wire=scenario.wire,
        pool=pool,
    )
    payloads = [b"live-%05d" % i for i in range(scenario.messages)]
    await proxy.start()

    if laned:
        # Per-lane link seeds match StripedLink(lanes, ε, seed=link_seed)
        # exactly — the differential property test leans on this identity.
        links = [
            make_data_link(
                epsilon=scenario.epsilon,
                seed=split_seed(link_seed, "lane", i),
            )
            for i in range(scenario.lanes)
        ]
        # One log per lane, *shared* by that lane's two stations, so each
        # lane's trace is a self-contained protocol execution for the
        # Section 2.6 monitors.
        logs = [_make_log() for __ in range(scenario.lanes)]
        tm = LanedTransmitterEndpoint(
            links,
            logs,
            proxy.t_facing_address,
            payloads,
            on_ok=note_progress,
            on_done=lambda: finish(LiveStatus.DELIVERED, "workload complete"),
            restart_delay=scenario.restart_delay,
            wire=scenario.wire,
            pool=pool,
        )
        rm = LanedReceiverEndpoint(
            links,
            logs,
            proxy.r_facing_address,
            [
                AdaptiveBackoff(scenario.poll, root.fork("poll-backoff", i))
                for i in range(scenario.lanes)
            ],
            on_progress=note_progress,
            restart_delay=scenario.restart_delay,
            wire=scenario.wire,
            pool=pool,
        )
    else:
        link = make_data_link(epsilon=scenario.epsilon, seed=link_seed)
        logs = [_make_log()]
        tm = TransmitterEndpoint(
            link.transmitter,
            logs[0],
            proxy.t_facing_address,
            payloads,
            on_ok=note_progress,
            on_done=lambda: finish(LiveStatus.DELIVERED, "workload complete"),
            restart_delay=scenario.restart_delay,
            wire=scenario.wire,
            pool=pool,
        )
        rm = ReceiverEndpoint(
            link.receiver,
            logs[0],
            proxy.r_facing_address,
            AdaptiveBackoff(scenario.poll, root.fork("poll-backoff")),
            on_progress=note_progress,
            restart_delay=scenario.restart_delay,
            wire=scenario.wire,
            pool=pool,
        )

    def _crash_station(station: str, turn: int, lane: "Optional[int]") -> None:
        # The orchestrator's kill switch: invoked by the proxy when a
        # scripted crash's wire turn arrives.  Mid-handshake by
        # construction — a turn only advances when a datagram is in flight.
        # On a laned wire the trigger datagram's lane id rides along and
        # only that lane dies; its siblings keep their handshakes.
        target = tm if station == "T" else rm
        if laned:
            target.crash(lane)
        else:
            target.crash()
        note_progress()  # a crash resets the pending-send clock (Axiom 1)

    def _corrupt_station(event: CorruptAt, lane: "Optional[int]") -> None:
        # In-place scramble: the station keeps running on whatever garbage
        # the seed-pinned tape produced — no dead window, no restart.  On a
        # laned wire only the trigger datagram's lane is scrambled.
        target = tm if event.station == "T" else rm
        if laned:
            if lane is not None:
                target.corrupt_lane(lane, event.seed, event.fields)
            else:
                target.corrupt(event.seed, fields=event.fields)
        else:
            target.corrupt(event.seed, event.fields)
        note_progress()  # the scramble restarts the convergence clock

    started = time.monotonic()
    supervisor: Optional[asyncio.Task] = None
    wire_ios: List = []
    try:
        await tm.start()
        await rm.start()
        proxy.connect(tm.local_address, rm.local_address)
        # All four batched sockets flush as one group: any drain chunk may
        # enqueue sends on any of them (station → proxy side → station),
        # and every borrowed view must leave before buffers are reused.
        wire_ios = tm.wire_ios + rm.wire_ios + proxy.wire_ios
        if wire_ios:
            link_flush_group(wire_ios)

        async def _give_up_watch() -> None:
            # Deadline-based supervision: the poll backoff retransmits, this
            # task decides when retransmission has stopped being worth it.
            interval = min(0.05, scenario.give_up_idle / 4)
            while not done.is_set():
                await asyncio.sleep(interval)
                idle = loop.time() - progress["at"]
                if idle > scenario.give_up_idle:
                    finish(
                        LiveStatus.UNRECONCILABLE,
                        f"no progress for {idle:.2f}s "
                        f"(give_up_idle={scenario.give_up_idle:g}s)",
                    )
                elif (
                    scenario.give_up_polls
                    and rm.polls_without_progress >= scenario.give_up_polls
                ):
                    finish(
                        LiveStatus.UNRECONCILABLE,
                        f"{rm.polls_without_progress} polls without progress "
                        f"(give_up_polls={scenario.give_up_polls})",
                    )

        supervisor = loop.create_task(_give_up_watch())
        try:
            await asyncio.wait_for(done.wait(), timeout=scenario.budget)
        except asyncio.TimeoutError:
            finish(
                LiveStatus.UNRECONCILABLE,
                f"wall-clock budget of {scenario.budget:g}s exhausted",
            )
    finally:
        if supervisor is not None:
            supervisor.cancel()
        rm.close()
        tm.close()
        proxy.close()
        # Let transport close callbacks drain so nothing leaks into the
        # caller's loop (and pytest's unraisable checks stay quiet).
        await asyncio.sleep(0)

    status: LiveStatus = outcome["status"]  # type: ignore[assignment]
    completed = status is LiveStatus.DELIVERED
    stabilization: Optional[StabilizationReport] = None
    if wants_stabilization:
        # Close the probation books BEFORE the safety verdicts are read: a
        # completed run's open episodes converge (end-of-traffic cut the
        # clean streak short, not a violation) and their echoes are
        # scrubbed; a truncated run keeps them, so the violations stand.
        summaries = []
        for log in logs:
            monitor = log.checks.stabilization
            if monitor is not None:
                monitor.finalize(completed)
                summaries.append(monitor.summary())
        if summaries:
            stabilization = StabilizationReport(
                corruptions=sum(s.corruptions for s in summaries),
                converged=sum(s.converged for s in summaries),
                window=scenario.stabilization_window,
                records=tuple(r for s in summaries for r in s.records),
            )
        if completed and stabilization is not None and stabilization.stabilized:
            status = LiveStatus.STABILIZED
    safety = merge_safety_reports([log.safety_report() for log in logs])
    liveness_passed = all(
        log.liveness_report(run_completed=completed).passed for log in logs
    )
    lane_metrics: List[LaneMetrics] = []
    if laned:
        # Stitch the TM-side and RM-side halves of each lane's counters
        # (both endpoints share the lane's log, so events agree).
        for t, r in zip(tm.lane_metrics(), rm.lane_metrics()):
            lane_metrics.append(
                LaneMetrics(
                    lane=t.lane,
                    oks=t.oks,
                    resubmissions=t.resubmissions,
                    deliveries=r.deliveries,
                    polls=r.polls,
                    crashes_t=t.crashes_t,
                    crashes_r=r.crashes_r,
                    events=t.events,
                )
            )
    forensic_tail: List[str] = []
    if not completed:
        for index, log in enumerate(logs):
            if laned:
                forensic_tail.append(f"-- lane {index} --")
            forensic_tail.extend(log.tail_lines())
    return LiveRunReport(
        scenario=scenario,
        status=status,
        reason=str(outcome["reason"]),
        safety=safety,
        liveness_passed=liveness_passed,
        deliveries=rm.deliveries,
        oks=tm.oks,
        resubmissions=tm.resubmissions,
        crashes_t=tm.crashes,
        crashes_r=rm.crashes,
        malformed_datagrams=tm.malformed + rm.malformed,
        events_seen=sum(log.events_seen for log in logs),
        wall_seconds=time.monotonic() - started,
        proxy=proxy.stats,
        lanes=scenario.lanes,
        lane_metrics=lane_metrics,
        resequencer_high_water=(rm.resequencer.high_water if laned else 0),
        resequencer_duplicates=(rm.resequencer.duplicates if laned else 0),
        in_order_delivered=(len(rm.delivered) if laned else rm.deliveries),
        corruptions_t=tm.corruptions,
        corruptions_r=rm.corruptions,
        stabilization=stabilization,
        wire=scenario.wire,
        # Stats survive close(); teardown has already flushed or released
        # every in-flight buffer, so pool_outstanding must read 0 here —
        # the crash-amnesia leak test pins exactly that.
        wire_stats=(merge_wire_stats(wire_ios) if wire_ios else None),
        pool_outstanding=(pool.outstanding if pool is not None else 0),
        pool_allocated=(pool.allocated if pool is not None else 0),
        pool_high_water=(pool.high_water if pool is not None else 0),
        delivered_stream=list(rm.delivered),
        forensic_tail=forensic_tail,
    )


def resolve_loop_backend(name: str) -> "tuple[str, object]":
    """Map a requested loop backend to ``(resolved_name, loop_factory)``.

    ``"uvloop"`` and ``"auto"`` try to import uvloop and fall back to
    asyncio when it is not installed — the dependency is optional and the
    live stack must run identically without it.
    """
    if name in ("uvloop", "auto"):
        try:
            import uvloop  # type: ignore[import-not-found]

            return "uvloop", uvloop.new_event_loop
        except ImportError:
            if name == "uvloop":
                # Explicit request degrades gracefully: same semantics,
                # stock loop.  The report's loop_backend records the truth.
                pass
    return "asyncio", asyncio.new_event_loop


def run_live_scenario(
    scenario: LiveScenario, loop: str = "asyncio"
) -> LiveRunReport:
    """Synchronous wrapper: run the scenario on a fresh event loop.

    ``loop`` selects the event loop backend: ``"asyncio"`` (default),
    ``"uvloop"`` (falls back to asyncio when not installed), or ``"auto"``
    (uvloop if available).  The loop lifecycle is managed manually instead
    of via ``asyncio.run`` so the same code path drives both backends.
    """
    backend, factory = resolve_loop_backend(loop)
    ev = factory()
    try:
        asyncio.set_event_loop(ev)
        report = ev.run_until_complete(run_live_scenario_async(scenario))
        ev.run_until_complete(ev.shutdown_asyncgens())
    finally:
        asyncio.set_event_loop(None)
        ev.close()
    report.loop_backend = backend
    return report
