"""Scripted live scenarios: stations + chaos proxy + crash orchestration.

:func:`run_live_scenario` is the live analogue of one supervised campaign
run.  It wires a real deployment on the loopback interface —

    TM endpoint  ⇄  chaos proxy  ⇄  RM endpoint

— runs a message workload through it under scripted and stochastic wire
faults, crash-kills stations on cue, and reduces the whole thing to a
:class:`LiveRunReport` whose Section 2.6 verdicts come from the same
streaming checkers the simulator uses.

Three guarantees make the harness CI-safe:

* **hard wall-clock budget** — the entire scenario runs under a deadline;
  whatever happens on the wire, the coroutine returns;
* **bounded give-up** — a supervisor task watches for progress (deliveries,
  nonce updates, OKs); if none lands within ``give_up_idle`` seconds, or
  the RM's backoff has decayed through ``give_up_polls`` fruitless polls,
  the run is torn down with status :data:`LiveStatus.UNRECONCILABLE` — the
  paper's ε-probability bad case surfaced as graceful degradation instead
  of a hang;
* **deterministic teardown** — tasks are cancelled and sockets closed in
  ``finally``, so a failing scenario cannot leak file descriptors or tasks
  into the next test.

Crash orchestration reuses the campaign fault-plan schema: a
``{"kind": "crash", "step": N, "station": "T"}`` event kills the named
station when the proxy observes its N-th datagram — necessarily
mid-handshake when traffic is flowing — and cold-restarts it with empty
volatile state after ``restart_delay`` seconds.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.checkers.live import LiveEventLog
from repro.checkers.report import SafetyReport
from repro.core.protocol import make_data_link
from repro.core.random_source import RandomSource, split_seed
from repro.live.backoff import AdaptiveBackoff, BackoffPolicy
from repro.live.endpoints import ReceiverEndpoint, TransmitterEndpoint
from repro.live.proxy import ChaosProxy, LinkProfile, ProxyStats
from repro.resilience.faultplan import FaultPlan
from repro.util.tables import render_table

__all__ = ["LiveStatus", "LiveScenario", "LiveRunReport", "run_live_scenario",
           "run_live_scenario_async"]


class LiveStatus(str, Enum):
    """Terminal status of one live scenario."""

    DELIVERED = "delivered"  # every workload slot OK'd
    UNRECONCILABLE = "unreconcilable"  # bounded give-up fired (no hang)
    ABORTED = "aborted"  # a scripted abort tore the harness down


@dataclass(frozen=True)
class LiveScenario:
    """Everything one live run needs (all wall-clock knobs in seconds)."""

    messages: int = 50
    seed: int = 0
    epsilon: float = 2.0 ** -16
    profile: LinkProfile = field(default_factory=LinkProfile)
    plan: FaultPlan = field(default_factory=FaultPlan)
    poll: BackoffPolicy = field(default_factory=BackoffPolicy)
    budget: float = 60.0  # hard wall-clock ceiling for the whole run
    give_up_idle: float = 5.0  # no-progress deadline
    give_up_polls: int = 0  # fruitless-poll bound (0 = idle deadline only)
    restart_delay: float = 0.02  # how long a crashed station stays down
    tail_size: int = 4096  # forensic event tail retained by the log
    label: str = ""

    def __post_init__(self) -> None:
        if self.messages < 1:
            raise ValueError("messages must be >= 1")
        if self.budget <= 0.0 or self.give_up_idle <= 0.0:
            raise ValueError("budget and give_up_idle must be positive")
        if self.give_up_polls < 0:
            raise ValueError("give_up_polls must be >= 0")


@dataclass
class LiveRunReport:
    """One live run, reduced to verdicts plus wire/crash accounting."""

    scenario: LiveScenario
    status: LiveStatus
    reason: str
    safety: SafetyReport
    liveness_passed: bool
    deliveries: int
    oks: int
    resubmissions: int
    crashes_t: int
    crashes_r: int
    malformed_datagrams: int
    events_seen: int
    wall_seconds: float
    proxy: ProxyStats
    forensic_tail: List[str] = field(repr=False, default_factory=list)

    @property
    def completed(self) -> bool:
        return self.status is LiveStatus.DELIVERED

    @property
    def ok(self) -> bool:
        """Delivered, safe, and live — the CI gate."""
        return self.completed and self.safety.passed and self.liveness_passed

    def render(self) -> str:
        summary = render_table(
            ["metric", "value"],
            [
                ["scenario", self.scenario.label or "-"],
                ["status", self.status.value],
                ["reason", self.reason],
                ["messages OK", f"{self.oks}/{self.scenario.messages}"],
                ["deliveries", self.deliveries],
                ["slot resubmissions", self.resubmissions],
                ["crashes (T/R)", f"{self.crashes_t}/{self.crashes_r}"],
                ["events checked", self.events_seen],
                ["wall seconds", f"{self.wall_seconds:.2f}"],
            ],
            title="live scenario",
        )
        wire = render_table(
            ["observed", "forwarded", "dropped", "duplicated", "reordered",
             "stalled", "foreign"],
            [[self.proxy.observed, self.proxy.forwarded, self.proxy.dropped,
              self.proxy.duplicated, self.proxy.reordered, self.proxy.stalled,
              self.proxy.foreign]],
            title="wire (chaos proxy)",
        )
        checks = render_table(
            ["condition", "verdict", "trials"],
            [
                [c.condition, "OK" if c.passed else "VIOLATED", c.trials]
                for c in self.safety.all_reports
            ]
            + [["liveness", "OK" if self.liveness_passed else "VIOLATED", "-"]],
            title="Section 2.6 conditions (live trace)",
        )
        return "\n".join([summary, "", wire, "", checks])


async def run_live_scenario_async(scenario: LiveScenario) -> LiveRunReport:
    """Execute one scripted live scenario end to end (see module docstring)."""
    loop = asyncio.get_running_loop()
    root = RandomSource(scenario.seed)
    link = make_data_link(
        epsilon=scenario.epsilon, seed=split_seed(scenario.seed, "live-link")
    )
    log = LiveEventLog(tail_size=scenario.tail_size)

    done = asyncio.Event()
    outcome = {"status": LiveStatus.UNRECONCILABLE, "reason": ""}
    progress = {"at": loop.time()}

    def finish(status: LiveStatus, reason: str) -> None:
        if not done.is_set():
            outcome["status"] = status
            outcome["reason"] = reason
            done.set()

    def note_progress() -> None:
        progress["at"] = loop.time()

    proxy = ChaosProxy(
        plan=scenario.plan,
        profile=scenario.profile,
        rng=root.fork("chaos"),
        on_crash=lambda station, turn: _crash_station(station, turn),
        on_abort=lambda turn: finish(
            LiveStatus.ABORTED, f"scripted abort at wire turn {turn}"
        ),
    )
    payloads = [b"live-%05d" % i for i in range(scenario.messages)]
    await proxy.start()

    tm = TransmitterEndpoint(
        link.transmitter,
        log,
        proxy.t_facing_address,
        payloads,
        on_ok=note_progress,
        on_done=lambda: finish(LiveStatus.DELIVERED, "workload complete"),
        restart_delay=scenario.restart_delay,
    )
    rm = ReceiverEndpoint(
        link.receiver,
        log,
        proxy.r_facing_address,
        AdaptiveBackoff(scenario.poll, root.fork("poll-backoff")),
        on_progress=note_progress,
        restart_delay=scenario.restart_delay,
    )

    def _crash_station(station: str, turn: int) -> None:
        # The orchestrator's kill switch: invoked by the proxy when a
        # scripted crash's wire turn arrives.  Mid-handshake by
        # construction — a turn only advances when a datagram is in flight.
        if station == "T":
            tm.crash()
        else:
            rm.crash()
        note_progress()  # a crash resets the pending-send clock (Axiom 1)

    started = time.monotonic()
    supervisor: Optional[asyncio.Task] = None
    try:
        await tm.start()
        await rm.start()
        proxy.connect(tm.local_address, rm.local_address)

        async def _give_up_watch() -> None:
            # Deadline-based supervision: the poll backoff retransmits, this
            # task decides when retransmission has stopped being worth it.
            interval = min(0.05, scenario.give_up_idle / 4)
            while not done.is_set():
                await asyncio.sleep(interval)
                idle = loop.time() - progress["at"]
                if idle > scenario.give_up_idle:
                    finish(
                        LiveStatus.UNRECONCILABLE,
                        f"no progress for {idle:.2f}s "
                        f"(give_up_idle={scenario.give_up_idle:g}s)",
                    )
                elif (
                    scenario.give_up_polls
                    and rm.polls_without_progress >= scenario.give_up_polls
                ):
                    finish(
                        LiveStatus.UNRECONCILABLE,
                        f"{rm.polls_without_progress} polls without progress "
                        f"(give_up_polls={scenario.give_up_polls})",
                    )

        supervisor = loop.create_task(_give_up_watch())
        try:
            await asyncio.wait_for(done.wait(), timeout=scenario.budget)
        except asyncio.TimeoutError:
            finish(
                LiveStatus.UNRECONCILABLE,
                f"wall-clock budget of {scenario.budget:g}s exhausted",
            )
    finally:
        if supervisor is not None:
            supervisor.cancel()
        rm.close()
        tm.close()
        proxy.close()
        # Let transport close callbacks drain so nothing leaks into the
        # caller's loop (and pytest's unraisable checks stay quiet).
        await asyncio.sleep(0)

    status: LiveStatus = outcome["status"]  # type: ignore[assignment]
    return LiveRunReport(
        scenario=scenario,
        status=status,
        reason=str(outcome["reason"]),
        safety=log.safety_report(),
        liveness_passed=log.liveness_report(
            run_completed=status is LiveStatus.DELIVERED
        ).passed,
        deliveries=rm.deliveries,
        oks=tm.oks,
        resubmissions=tm.resubmissions,
        crashes_t=tm.crashes,
        crashes_r=rm.crashes,
        malformed_datagrams=tm.malformed + rm.malformed,
        events_seen=log.events_seen,
        wall_seconds=time.monotonic() - started,
        proxy=proxy.stats,
        forensic_tail=log.tail_lines() if status is not LiveStatus.DELIVERED else [],
    )


def run_live_scenario(scenario: LiveScenario) -> LiveRunReport:
    """Synchronous wrapper: run the scenario on a fresh event loop."""
    return asyncio.run(run_live_scenario_async(scenario))
