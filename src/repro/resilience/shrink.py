"""Greedy delta-debugging: shrink a failing run to a minimal repro.

A campaign failure arrives as (seed, workload size, fault plan).  Most of
that is usually irrelevant — the interesting crash needs two of the forty
messages and one of the six scripted events.  :func:`shrink_repro` probes
progressively smaller candidates *in-process* (hard aborts degrade to the
soft, exception form, so probing is safe) and keeps a candidate whenever
the failure still reproduces, judged by a matcher on the terminal status
and — for safety failures — the set of violated conditions.

The passes, in order, each greedy:

1. **workload** — halve-then-narrow the message count;
2. **events** — drop fault-plan events one at a time while the failure
   persists;
3. **magnitudes** — per-event simplification (narrower windows, fewer
   burst copies) via :meth:`FaultEvent.shrink_candidates`.

Every probe is bounded by a wall-clock deadline so a shrink session cannot
hang on a candidate that stalls (the original failure mode might be
exactly that), and the total probe count is capped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Set

from repro.resilience.faultplan import FaultPlan
from repro.resilience.supervisor import RunReport, RunStatus, execute_attempt
from repro.sim.runner import RunSpec

__all__ = ["ShrinkResult", "status_matcher", "shrink_repro"]


@dataclass(frozen=True)
class ShrinkResult:
    """The minimized repro plus bookkeeping about the search."""

    seed: int
    messages: int
    plan: FaultPlan
    original_messages: int
    original_events: int
    status: RunStatus
    probes: int

    @property
    def shrank(self) -> bool:
        """True iff the minimizer found anything smaller than the input."""
        return (
            self.messages < self.original_messages
            or len(self.plan.events) < self.original_events
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "messages": self.messages,
            "status": self.status.value,
            "probes": self.probes,
            "original": {
                "messages": self.original_messages,
                "events": self.original_events,
            },
            "fault_plan": self.plan.to_dict(),
        }


def status_matcher(reference: RunReport) -> Callable[[RunReport], bool]:
    """Build the default "same failure" predicate from a reference report.

    Matches on terminal status; for ``safety_failed`` additionally requires
    at least one of the originally violated conditions to fail again (a
    different safety bug is a different repro).
    """
    if reference.status is RunStatus.OK:
        raise ValueError("nothing to shrink: the reference run is ok")
    failing: Set[str] = set()
    if reference.status is RunStatus.SAFETY_FAILED and reference.safety_summary:
        failing = {
            condition
            for condition, (failures, _) in reference.safety_summary.items()
            if failures > 0
        }

    def matches(report: RunReport) -> bool:
        if report.status is not reference.status:
            return False
        if failing:
            if not report.safety_summary:
                return False
            still = {
                condition
                for condition, (failures, _) in report.safety_summary.items()
                if failures > 0
            }
            return bool(still & failing)
        return True

    return matches


def shrink_repro(
    spec_builder: Callable[[int], RunSpec],
    seed: int,
    plan: FaultPlan,
    messages: int,
    run_index: int = 0,
    timeout: Optional[float] = 5.0,
    max_probes: int = 200,
    matcher: Optional[Callable[[RunReport], bool]] = None,
) -> ShrinkResult:
    """Minimize (messages, plan) while the failure keeps reproducing.

    Parameters
    ----------
    spec_builder:
        Maps a message count to the :class:`RunSpec` to probe (everything
        else about the spec — link, adversary, budgets — held fixed).
    seed:
        The failing run's seed, reused verbatim by every probe.
    plan / messages:
        The failing configuration to shrink.
    run_index:
        The campaign index of the failing run (fault plans may script
        per-run events; probes must project the same ones).
    timeout:
        Per-probe wall-clock bound; probes that exceed it count as
        ``timeout`` outcomes (matching a timeout reference is fine).
    max_probes:
        Hard cap on simulations run by the whole session.
    matcher:
        Custom "same failure" predicate; defaults to
        :func:`status_matcher` built from the initial reproduction.
    """
    if messages < 0:
        raise ValueError("messages must be non-negative")
    # Events scripted for other campaign runs are dead weight here; project
    # the plan onto the failing run before minimizing it.
    plan = plan.for_run(run_index)
    original_messages = messages
    original_events = len(plan.events)
    probes = 0

    def probe(candidate_messages: int, candidate_plan: FaultPlan) -> RunReport:
        nonlocal probes
        probes += 1
        return execute_attempt(
            spec_builder(candidate_messages),
            candidate_plan,
            run_index,
            seed,
            timeout,
            capture_trace=False,
        )

    reference = probe(messages, plan)
    if matcher is None:
        matcher = status_matcher(reference)  # raises if the run is ok

    def reproduces(candidate_messages: int, candidate_plan: FaultPlan) -> bool:
        if probes >= max_probes:
            return False
        return matcher(probe(candidate_messages, candidate_plan))

    # Pass 1: shrink the workload, halving the cut until it stops working.
    step = max(1, messages // 2)
    while step >= 1 and messages > 0 and probes < max_probes:
        candidate = messages - step
        if reproduces(candidate, plan):
            messages = candidate
        else:
            step //= 2

    # Pass 2: drop whole events while the failure persists.
    improved = True
    while improved and probes < max_probes:
        improved = False
        for index in range(len(plan.events)):
            candidate = plan.without_event(index)
            if reproduces(messages, candidate):
                plan = candidate
                improved = True
                break

    # Pass 3: per-event magnitude shrinking (narrow windows, fewer copies).
    improved = True
    while improved and probes < max_probes:
        improved = False
        for index, event in enumerate(plan.events):
            for simpler in event.shrink_candidates():
                candidate = plan.replace_event(index, simpler)
                if reproduces(messages, candidate):
                    plan = candidate
                    improved = True
                    break
            if improved:
                break

    return ShrinkResult(
        seed=seed,
        messages=messages,
        plan=plan,
        original_messages=original_messages,
        original_events=original_events,
        status=reference.status,
        probes=probes,
    )
