"""Declarative, replayable fault schedules for campaign runs.

A :class:`FaultPlan` is a JSON-serializable script of fault events — crash
this station at step N, drop every packet announced in a window, duplicate
a burst of recent traffic, stall the schedule — compiled by
:class:`ScriptedAdversary` into a deterministic adversary.  Scripted
schedules give the campaign engine record-and-replay fault injection: the
exact schedule that produced a failure is archived next to the trace and
can be re-run (or shrunk, see :mod:`repro.resilience.shrink`) bit-for-bit.

Two event kinds exist purely to harden the *harness* rather than the
protocol: :class:`HangAt` (the adversary stops returning — caught by the
supervisor's per-run wall-clock timeout) and :class:`AbortAt` (the run
dies mid-flight; with ``hard=True`` the whole worker process exits, which
is how the supervisor's worker-crash isolation is exercised end to end).

Events carry an optional ``run`` selector so one plan can script different
faults for different runs of a campaign (``None`` applies to every run);
:meth:`FaultPlan.for_run` projects the plan onto one run index.

``ScriptedAdversary`` composes with the existing adversary zoo: give it an
``inner`` adversary and the scripted events overlay the inner schedule
(drops intercept announcements before the inner adversary sees them;
crashes, stalls and bursts pre-empt the inner move).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, fields, replace
from typing import Dict, Iterable, List, Optional, Tuple, Type

from repro.adversary.base import (
    CRASH_RECEIVER,
    CRASH_TRANSMITTER,
    PASS,
    Adversary,
    Corrupt,
    Deliver,
    Move,
    make_deliver,
)
from repro.channel.channel import PacketInfo
from repro.core.events import ChannelId
from repro.core.receiver import Receiver
from repro.core.transmitter import Transmitter

__all__ = [
    "FaultInjectionAbort",
    "FaultEvent",
    "CrashAt",
    "CorruptAt",
    "DropWindow",
    "DuplicateBurst",
    "StallWindow",
    "HangAt",
    "AbortAt",
    "TopologyEvent",
    "LinkDownWindow",
    "LinkUpWindow",
    "RelayCrashAt",
    "RouteFlapAt",
    "FaultPlan",
    "ScriptedAdversary",
    "apply_fault_plan",
    "enable_hard_aborts",
]


class FaultInjectionAbort(RuntimeError):
    """A scripted :class:`AbortAt` event fired (soft form)."""


# Hard aborts (os._exit) are only honoured inside supervisor worker
# processes; anywhere else they degrade to the soft (exception) form so a
# stray plan cannot kill a test runner or an interactive session.
_HARD_ABORTS_ENABLED = False


def enable_hard_aborts(enabled: bool) -> None:
    """Allow ``AbortAt(hard=True)`` to terminate this process (workers only)."""
    global _HARD_ABORTS_ENABLED
    _HARD_ABORTS_ENABLED = bool(enabled)


_CHANNEL_VALUES = tuple(c.value for c in ChannelId)


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one scripted fault.  ``kind`` keys the JSON encoding."""

    kind = ""  # overridden per subclass (class attribute, not a field)

    def to_dict(self) -> dict:
        data = {"kind": type(self).kind}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is not None:
                data[f.name] = value
        return data

    def shrink_candidates(self) -> Tuple["FaultEvent", ...]:
        """Strictly simpler variants of this event (for the minimizer)."""
        return ()

    def _check_step(self, step: int) -> None:
        if step < 1:
            raise ValueError(f"{type(self).kind} step must be >= 1, got {step}")

    def _check_window(self, start: int, end: int) -> None:
        if start < 1 or end < start:
            raise ValueError(
                f"{type(self).kind} window must satisfy 1 <= start <= end, "
                f"got [{start}, {end}]"
            )


@dataclass(frozen=True)
class CrashAt(FaultEvent):
    """Crash one station at an exact adversary turn."""

    kind = "crash"

    step: int
    station: str  # "T" or "R"
    run: Optional[int] = None

    def __post_init__(self) -> None:
        self._check_step(self.step)
        if self.station not in ("T", "R"):
            raise ValueError(f"station must be 'T' or 'R', got {self.station!r}")


def _corruptible_fields(station: str) -> Tuple[str, ...]:
    return (
        Transmitter.CORRUPTIBLE_FIELDS
        if station == "T"
        else Receiver.CORRUPTIBLE_FIELDS
    )


@dataclass(frozen=True)
class CorruptAt(FaultEvent):
    """Scramble one station's volatile memory at an exact adversary turn.

    The arbitrary-state fault: ``fields`` restricts the scramble to named
    volatile slots (None = every corruptible field; see the stations'
    ``CORRUPTIBLE_FIELDS``), ``seed`` pins the scramble tape so a recorded
    corruption replays bit-identically, and ``mode="wipe"`` degrades the
    event to the station's crash transition — compiled to the *same* crash
    move a :class:`CrashAt` produces, so wipe-mode corruption and crash are
    trace-identical by construction.
    """

    kind = "corrupt"

    step: int
    station: str  # "T" or "R"
    fields: Optional[Tuple[str, ...]] = None
    seed: int = 0
    mode: str = "scramble"
    run: Optional[int] = None

    def __post_init__(self) -> None:
        self._check_step(self.step)
        if self.station not in ("T", "R"):
            raise ValueError(f"station must be 'T' or 'R', got {self.station!r}")
        if self.mode not in ("scramble", "wipe"):
            raise ValueError(
                f"corrupt mode must be 'scramble' or 'wipe', got {self.mode!r}"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int) or self.seed < 0:
            raise ValueError(
                f"corrupt seed must be a non-negative integer, got {self.seed!r}"
            )
        if self.fields is not None:
            object.__setattr__(self, "fields", tuple(self.fields))
            if not self.fields:
                raise ValueError(
                    "corrupt fields must be omitted (all fields) or non-empty"
                )
            valid = _corruptible_fields(self.station)
            unknown = [name for name in self.fields if name not in valid]
            if unknown:
                raise ValueError(
                    f"corrupt fields {sorted(unknown)} unknown for station "
                    f"{self.station!r} (corruptible: {', '.join(valid)})"
                )

    def shrink_candidates(self) -> Tuple[FaultEvent, ...]:
        candidates: List[FaultEvent] = []
        if self.mode == "scramble":
            # A wipe (= crash) is the strictly simpler fault.
            candidates.append(replace(self, mode="wipe", fields=None))
            fields = (
                self.fields if self.fields is not None
                else _corruptible_fields(self.station)
            )
            if len(fields) > 1:
                half = len(fields) // 2
                candidates.append(replace(self, fields=tuple(fields[:half])))
                candidates.append(replace(self, fields=tuple(fields[half:])))
        return tuple(candidates)


@dataclass(frozen=True)
class DropWindow(FaultEvent):
    """Silently drop every packet announced during turns [start, end].

    ``channel`` restricts the drop to one direction (``"T->R"`` or
    ``"R->T"``); ``None`` drops both.
    """

    kind = "drop"

    start: int
    end: int
    channel: Optional[str] = None
    run: Optional[int] = None

    def __post_init__(self) -> None:
        self._check_window(self.start, self.end)
        if self.channel is not None and self.channel not in _CHANNEL_VALUES:
            raise ValueError(
                f"channel must be one of {_CHANNEL_VALUES} or None, "
                f"got {self.channel!r}"
            )

    def shrink_candidates(self) -> Tuple[FaultEvent, ...]:
        width = self.end - self.start
        if width == 0:
            return ()
        return (replace(self, end=self.start + width // 2),)


@dataclass(frozen=True)
class DuplicateBurst(FaultEvent):
    """Re-deliver the packet announced most recently before ``step``.

    ``copies`` extra deliveries are scheduled at turns ``step``,
    ``step + spacing``, ``step + 2*spacing``, ...  With ``spacing=1`` the
    copies drain back-to-back inside the handshake they came from, where a
    correct receiver shrugs them off as retransmissions; larger spacings
    let the tail of the burst land in *later* handshakes, turning the
    copies into genuine replays (the Section 3 threat).
    """

    kind = "duplicate"

    step: int
    copies: int = 2
    spacing: int = 1
    run: Optional[int] = None

    def __post_init__(self) -> None:
        self._check_step(self.step)
        if self.copies < 1:
            raise ValueError(f"copies must be >= 1, got {self.copies}")
        if self.spacing < 1:
            raise ValueError(f"spacing must be >= 1, got {self.spacing}")

    def shrink_candidates(self) -> Tuple[FaultEvent, ...]:
        candidates = []
        if self.copies > 1:
            candidates.append(replace(self, copies=self.copies // 2))
        if self.spacing > 1:
            candidates.append(replace(self, spacing=max(1, self.spacing // 2)))
        return tuple(candidates)


@dataclass(frozen=True)
class StallWindow(FaultEvent):
    """Deliver nothing during turns [start, end] (the schedule goes quiet).

    Note the harness-level :class:`~repro.adversary.FairnessEnforcer` will
    override long stalls unless the run disables fairness or its patience
    exceeds the window.
    """

    kind = "stall"

    start: int
    end: int
    run: Optional[int] = None

    def __post_init__(self) -> None:
        self._check_window(self.start, self.end)

    def shrink_candidates(self) -> Tuple[FaultEvent, ...]:
        width = self.end - self.start
        if width == 0:
            return ()
        return (replace(self, end=self.start + width // 2),)


@dataclass(frozen=True)
class HangAt(FaultEvent):
    """The adversary stops returning at one turn (a hung worker).

    With ``seconds=None`` it sleeps until the supervisor's wall-clock
    watchdog interrupts it; a finite ``seconds`` resumes afterwards
    (a long stall in wall-clock rather than turn units).
    """

    kind = "hang"

    step: int
    seconds: Optional[float] = None
    run: Optional[int] = None

    def __post_init__(self) -> None:
        self._check_step(self.step)
        if self.seconds is not None and self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


@dataclass(frozen=True)
class AbortAt(FaultEvent):
    """Kill the run at one turn.

    ``hard=False`` raises :class:`FaultInjectionAbort` (an in-run crash —
    terminal status ``crashed``).  ``hard=True`` exits the whole worker
    process, exercising the supervisor's broken-pool recovery; outside a
    worker it degrades to the soft form.
    """

    kind = "abort"

    step: int
    hard: bool = False
    run: Optional[int] = None

    def __post_init__(self) -> None:
        self._check_step(self.step)


def _normalize_node(node):
    """Canonical node label: JSON lists become tuples (mesh coordinates)."""
    if isinstance(node, (list, tuple)):
        return tuple(_normalize_node(part) for part in node)
    return node


@dataclass(frozen=True)
class TopologyEvent(FaultEvent):
    """Base class: a fault aimed at the relay fabric's *topology*.

    Topology events act on the network graph a multi-hop fabric run is
    routed over (links partitioning and healing, relay nodes crashing with
    amnesia, routes flapping) rather than on one protocol station.  They
    are interpreted by the fabric driver
    (:class:`repro.transport.fabric.FabricSpec`); compiling one into a
    single-link :class:`ScriptedAdversary` is a configuration error —
    a plain campaign has no topology to act on.
    """

    def _check_link(self, link) -> Tuple[object, object]:
        if not isinstance(link, (list, tuple)) or len(link) != 2:
            raise ValueError(
                f"{type(self).kind} link must be a [node, node] pair, "
                f"got {link!r}"
            )
        a, b = (_normalize_node(end) for end in link)
        if a == b:
            raise ValueError(f"{type(self).kind} link endpoints must differ")
        return (a, b)


@dataclass(frozen=True)
class LinkDownWindow(TopologyEvent):
    """Force one link down during fabric ticks [start, end] (partition).

    The link heals (returns to its own Markov dynamics) after ``end`` —
    one event scripts a partition *and* its heal, the topology analogue of
    :class:`DropWindow`.  Per-link protocol retransmission recovers the
    in-flight traffic after the heal; the end-to-end monitor verdict must
    converge back to clean.
    """

    kind = "link_down"

    start: int
    end: int
    link: Tuple[object, object]
    run: Optional[int] = None

    def __post_init__(self) -> None:
        self._check_window(self.start, self.end)
        object.__setattr__(self, "link", self._check_link(self.link))

    def shrink_candidates(self) -> Tuple[FaultEvent, ...]:
        width = self.end - self.start
        if width == 0:
            return ()
        return (replace(self, end=self.start + width // 2),)


@dataclass(frozen=True)
class LinkUpWindow(TopologyEvent):
    """Force one link up during fabric ticks [start, end] (scripted heal).

    Overrides the link's Markov failure process for the window — the tool
    for pinning a deterministic heal inside an otherwise lossy topology.
    """

    kind = "link_up"

    start: int
    end: int
    link: Tuple[object, object]
    run: Optional[int] = None

    def __post_init__(self) -> None:
        self._check_window(self.start, self.end)
        object.__setattr__(self, "link", self._check_link(self.link))

    def shrink_candidates(self) -> Tuple[FaultEvent, ...]:
        width = self.end - self.start
        if width == 0:
            return ()
        return (replace(self, end=self.start + width // 2),)


@dataclass(frozen=True)
class RelayCrashAt(TopologyEvent):
    """Crash one relay node with amnesia at an exact fabric tick.

    The relay's store-and-forward queue is wiped and both stations of
    every link instance adjacent to the node take their crash transition
    (the same amnesia semantics as ``crash^T``/``crash^R`` on a single
    link).  Crashing the fabric's source or destination endpoint is
    rejected at interpretation time — those are the protocol's own
    stations, scripted via :class:`CrashAt` on a single link.
    """

    kind = "relay_crash"

    step: int
    node: object
    run: Optional[int] = None

    def __post_init__(self) -> None:
        self._check_step(self.step)
        object.__setattr__(self, "node", _normalize_node(self.node))


@dataclass(frozen=True)
class RouteFlapAt(TopologyEvent):
    """Force the fabric's route to recompute at an exact fabric tick.

    No link changes state — the event models control-plane churn: the
    routing layer discards its cached path and re-derives it from the
    live topology, surfacing in the fabric's ``reroutes`` counter.
    """

    kind = "route_flap"

    step: int
    run: Optional[int] = None

    def __post_init__(self) -> None:
        self._check_step(self.step)


_EVENT_TYPES: Dict[str, Type[FaultEvent]] = {
    cls.kind: cls
    for cls in (
        CrashAt,
        CorruptAt,
        DropWindow,
        DuplicateBurst,
        StallWindow,
        HangAt,
        AbortAt,
        LinkDownWindow,
        LinkUpWindow,
        RelayCrashAt,
        RouteFlapAt,
    )
}


def event_from_dict(data: dict) -> FaultEvent:
    """Decode one event from its ``to_dict`` form."""
    if not isinstance(data, dict) or "kind" not in data:
        raise ValueError(f"malformed fault event record: {data!r}")
    kind = data["kind"]
    cls = _EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown fault event kind {kind!r} (known: {sorted(_EVENT_TYPES)})"
        )
    allowed = {f.name for f in fields(cls)}
    attrs = {k: v for k, v in data.items() if k != "kind"}
    unknown = set(attrs) - allowed
    if unknown:
        raise ValueError(f"fault event {kind!r} has unknown fields {sorted(unknown)}")
    return cls(**attrs)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable script of fault events plus a label."""

    events: Tuple[FaultEvent, ...] = ()
    label: str = ""

    @classmethod
    def of(cls, *events: FaultEvent, label: str = "") -> "FaultPlan":
        return cls(events=tuple(events), label=label)

    @property
    def is_empty(self) -> bool:
        return not self.events

    def for_run(self, run_index: int) -> "FaultPlan":
        """Project the plan onto one campaign run (keeps unselective events)."""
        return FaultPlan(
            events=tuple(
                e for e in self.events if e.run is None or e.run == run_index
            ),
            label=self.label,
        )

    def without_event(self, index: int) -> "FaultPlan":
        """A copy with one event removed (for the minimizer)."""
        return FaultPlan(
            events=self.events[:index] + self.events[index + 1:], label=self.label
        )

    def replace_event(self, index: int, event: FaultEvent) -> "FaultPlan":
        """A copy with one event substituted (for the minimizer)."""
        return FaultPlan(
            events=self.events[:index] + (event,) + self.events[index + 1:],
            label=self.label,
        )

    # -- (de)serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "label": self.label,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict) or "events" not in data:
            raise ValueError("a fault plan needs an 'events' list")
        version = data.get("version", 1)
        if version != 1:
            raise ValueError(f"unsupported fault plan version {version!r}")
        return cls(
            events=tuple(event_from_dict(e) for e in data["events"]),
            label=str(data.get("label", "")),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(self.to_json())
            stream.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_json(stream.read())


class ScriptedAdversary(Adversary):
    """Deterministic adversary compiled from a :class:`FaultPlan`.

    Turn numbers are 1-based counts of this adversary's own moves.  With no
    ``inner`` adversary the baseline schedule is benign FIFO delivery;
    with one, the inner adversary supplies the baseline schedule and the
    scripted events overlay it.
    """

    def __init__(self, plan: FaultPlan, inner: Optional[Adversary] = None) -> None:
        super().__init__()
        self.plan = plan
        self.inner = inner
        self._crashes: Dict[int, List[str]] = {}
        self._corrupts: Dict[int, List[CorruptAt]] = {}
        self._dups: Dict[int, List[DuplicateBurst]] = {}
        self._hangs: Dict[int, Optional[float]] = {}
        self._aborts: Dict[int, bool] = {}
        self._drops: List[DropWindow] = []
        self._stalls: List[StallWindow] = []
        for event in plan.events:
            if isinstance(event, TopologyEvent):
                raise ValueError(
                    f"fault event {type(event).kind!r} targets the network "
                    "topology; it needs a relay-fabric run "
                    "(repro campaign --topology), not a single-link adversary"
                )
            if isinstance(event, CrashAt):
                self._crashes.setdefault(event.step, []).append(event.station)
            elif isinstance(event, CorruptAt):
                if event.mode == "wipe":
                    # Wipe-mode corruption compiles to the exact crash move
                    # a CrashAt produces: trace-identical by construction.
                    self._crashes.setdefault(event.step, []).append(event.station)
                else:
                    self._corrupts.setdefault(event.step, []).append(event)
            elif isinstance(event, DuplicateBurst):
                self._dups.setdefault(event.step, []).append(event)
            elif isinstance(event, HangAt):
                self._hangs[event.step] = event.seconds
            elif isinstance(event, AbortAt):
                self._aborts[event.step] = (
                    self._aborts.get(event.step, False) or event.hard
                )
            elif isinstance(event, DropWindow):
                self._drops.append(event)
            elif isinstance(event, StallWindow):
                self._stalls.append(event)
        self._queue: List[PacketInfo] = []  # own FIFO when inner is None
        # Duplicate-burst copies waiting for their (turn, packet) due date.
        self._redeliver: List[Tuple[int, PacketInfo]] = []
        self._last_announced: Optional[PacketInfo] = None
        self.dropped = 0
        self.duplicated = 0

    def bind(self, rng) -> None:
        super().bind(rng)
        if self.inner is not None:
            self.inner.bind(rng.fork("scripted-inner"))

    # -- announcements -------------------------------------------------------------

    def _in_drop_window(self, turn: int, channel: ChannelId) -> bool:
        for window in self._drops:
            if window.start <= turn <= window.end and (
                window.channel is None or window.channel == channel.value
            ):
                return True
        return False

    def on_new_pkt(self, info: PacketInfo) -> None:
        # Announcements land between moves; they belong to the upcoming turn.
        turn = self.moves_made + 1
        if self._in_drop_window(turn, info.channel):
            self.dropped += 1
            return
        self._last_announced = info
        if self.inner is not None:
            self.inner.on_new_pkt(info)
        else:
            self._queue.append(info)

    # -- moves ---------------------------------------------------------------------

    def _decide(self) -> Move:
        turn = self.moves_made
        if turn in self._aborts:
            hard = self._aborts.pop(turn)
            if hard and _HARD_ABORTS_ENABLED:
                os._exit(86)
            raise FaultInjectionAbort(f"scripted abort at turn {turn}")
        if turn in self._hangs:
            seconds = self._hangs.pop(turn)
            if seconds is None:
                while True:  # until the supervisor's watchdog interrupts
                    time.sleep(0.05)
            time.sleep(seconds)
            return PASS
        stations = self._crashes.get(turn)
        if stations:
            station = stations.pop(0)
            if not stations:
                del self._crashes[turn]
            return CRASH_TRANSMITTER if station == "T" else CRASH_RECEIVER
        corrupts = self._corrupts.get(turn)
        if corrupts:
            event = corrupts.pop(0)
            if not corrupts:
                del self._corrupts[turn]
            return Corrupt(
                station=event.station, fields=event.fields, seed=event.seed
            )
        if turn in self._dups and self._last_announced is not None:
            for burst in self._dups.pop(turn):
                self._redeliver.extend(
                    (turn + k * burst.spacing, self._last_announced)
                    for k in range(burst.copies)
                )
                self.duplicated += burst.copies
        if any(w.start <= turn <= w.end for w in self._stalls):
            return PASS
        due = next(
            (i for i, (when, _) in enumerate(self._redeliver) if when <= turn), None
        )
        if due is not None:
            _, info = self._redeliver.pop(due)
            return make_deliver(info.channel, info.packet_id)
        if self.inner is not None:
            return self.inner.next_move()
        if self._queue:
            info = self._queue.pop(0)
            return make_deliver(info.channel, info.packet_id)
        return PASS

    def describe(self) -> str:
        inner = f", inner={self.inner.describe()}" if self.inner else ""
        label = f" {self.plan.label!r}" if self.plan.label else ""
        return f"scripted({len(self.plan.events)} events{label}{inner})"


def apply_fault_plan(spec, plan: FaultPlan, run_index: int = 0):
    """A copy of ``spec`` whose adversary is wrapped in the run's script.

    The spec's own adversary becomes the inner (baseline) schedule unless
    the plan leaves no events for this run, in which case the spec is
    returned unchanged.
    """
    projected = plan.for_run(run_index)
    if projected.is_empty:
        return spec
    base_factory = spec.adversary_factory
    return replace(
        spec,
        adversary_factory=lambda: ScriptedAdversary(projected, inner=base_factory()),
    )
