"""Process-pool campaign supervisor: Monte-Carlo with fleet discipline.

:func:`run_campaign` executes the runs of a :class:`~repro.sim.RunSpec`
in parallel worker processes with the retry/timeout/isolation behaviour a
production harness needs:

* **per-run wall-clock timeout** — a SIGALRM watchdog inside the worker
  interrupts hung runs (e.g. an adversary that stops returning) and
  reports terminal status ``timeout`` instead of wedging the campaign;
* **bounded retries** — runs that time out or crash are retried with
  jittered exponential backoff and a *fresh derived seed* per attempt;
  when the budget is spent the terminal status is ``exhausted_retries``;
* **worker-crash isolation** — a worker process that dies mid-run (hard
  abort, OOM kill, segfault) breaks the pool; the supervisor identifies
  the culprit from per-run running-markers, rebuilds the pool, and
  re-runs the innocent bystanders with their seeds unchanged, so one
  poisonous run cannot take the campaign down;
* **graceful degradation** — aggregation happens over the runs that
  produced data, with the missing runs reported explicitly per status
  instead of silently dropped.

Determinism: every per-run seed is ``split_seed(base_seed, "campaign-run",
index, attempt)`` and retry/blame decisions depend only on per-run results,
so a campaign's reports are identical for ``jobs=1`` and ``jobs=4``
(wall-clock ``duration`` aside).

Workers inherit the (possibly unpicklable) spec by forking, so arbitrary
``RunSpec`` factories — lambdas included — work unchanged.  On platforms
without ``fork`` the supervisor falls back to in-process execution with
the same retry/timeout semantics (hard aborts degrade to soft).
"""

from __future__ import annotations

import dataclasses
import io
import multiprocessing
import os
import random
import signal
import tempfile
import time
import traceback
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.core.random_source import split_seed
from repro.resilience.faultplan import FaultPlan, apply_fault_plan, enable_hard_aborts
from repro.sim.metrics import SimulationMetrics
from repro.sim.runner import RunSpec, run_once
from repro.util.stats import BernoulliEstimate, wilson_interval
from repro.util.tables import render_table

__all__ = [
    "RunStatus",
    "RunReport",
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "derive_run_seed",
]


class RunStatus(str, Enum):
    """Terminal status of one campaign run."""

    OK = "ok"
    SAFETY_FAILED = "safety_failed"
    TIMEOUT = "timeout"
    CRASHED = "crashed"
    EXHAUSTED_RETRIES = "exhausted_retries"


#: Statuses that were produced by the run itself and may be retried.
_RETRYABLE = (RunStatus.TIMEOUT, RunStatus.CRASHED)


def derive_run_seed(base_seed: int, index: int, attempt: int) -> int:
    """The deterministic seed for one (run, attempt) pair."""
    return split_seed(base_seed, "campaign-run", index, attempt)


@dataclass(frozen=True)
class RunReport:
    """Everything the supervisor kept about one run's terminal attempt."""

    index: int
    seed: int
    status: RunStatus
    attempts: int = 1
    completed: bool = False
    steps: int = 0
    duration: float = 0.0
    liveness_passed: bool = False
    worker_deaths: int = 0
    metrics: Optional[SimulationMetrics] = field(repr=False, default=None)
    #: condition -> (failures, trials); None when the run produced no trace.
    safety_summary: Optional[Dict[str, Tuple[int, int]]] = None
    violations: Tuple[str, ...] = ()
    trace_jsonl: Optional[str] = field(repr=False, default=None)
    error: Optional[str] = None
    #: Events the trace's retention mode discarded (0 for retain="full";
    #: a captured tail trace is partial when this is non-zero).
    trace_dropped_events: int = 0

    @property
    def has_data(self) -> bool:
        """True iff the run produced a checkable trace (ok / safety_failed)."""
        return self.safety_summary is not None

    def fingerprint(self) -> tuple:
        """The deterministic identity of this report (no wall-clock fields)."""
        summary = (
            tuple(sorted(self.safety_summary.items()))
            if self.safety_summary is not None
            else None
        )
        return (
            self.index,
            self.seed,
            self.status.value,
            self.attempts,
            self.completed,
            self.steps,
            summary,
        )


@dataclass(frozen=True)
class CampaignConfig:
    """Supervisor knobs (all orthogonal to the spec under test)."""

    jobs: int = 1
    timeout: Optional[float] = None  # per-run wall-clock seconds
    retries: int = 0  # extra attempts after the first
    backoff_base: float = 0.05  # seconds; doubles per attempt, jittered
    backoff_cap: float = 2.0
    artifacts_dir: Optional[str] = None
    capture_traces: bool = True  # archive traces of non-ok runs
    in_process: bool = False  # debugging: skip the pool entirely

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")


class _AttemptTimeout(Exception):
    """Raised by the in-worker watchdog when a run blows its wall budget."""


@contextmanager
def _deadline(seconds: Optional[float]):
    """SIGALRM-based wall-clock guard (no-op without a timeout or SIGALRM)."""
    if seconds is None or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum, frame):
        raise _AttemptTimeout()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_attempt(
    spec: RunSpec,
    fault_plan: Optional[FaultPlan],
    index: int,
    seed: int,
    timeout: Optional[float],
    capture_trace: bool,
) -> RunReport:
    """One supervised attempt of one run, classified into a :class:`RunReport`.

    Runs in the current process — the workers call this, and the shrink
    minimizer reuses it in-process for its probes.
    """
    effective = spec if fault_plan is None else apply_fault_plan(spec, fault_plan, index)
    started = time.monotonic()
    try:
        with _deadline(timeout):
            outcome = run_once(effective, seed)
    except _AttemptTimeout:
        return RunReport(
            index=index,
            seed=seed,
            status=RunStatus.TIMEOUT,
            duration=time.monotonic() - started,
            error=f"run exceeded the {timeout}s wall-clock budget",
        )
    except Exception:
        return RunReport(
            index=index,
            seed=seed,
            status=RunStatus.CRASHED,
            duration=time.monotonic() - started,
            error=traceback.format_exc(limit=16),
        )
    duration = time.monotonic() - started
    status = RunStatus.OK if outcome.safety.passed else RunStatus.SAFETY_FAILED
    summary = OrderedDict(
        (report.condition, (report.failure_count, report.trials))
        for report in outcome.safety.all_reports
    )
    violations = tuple(
        f"{v.condition}@{v.event_index}: {v.detail}"
        for report in outcome.safety.all_reports
        for v in report.violations[:8]
    )
    trace = outcome.result.trace
    trace_jsonl = None
    if capture_trace and status is not RunStatus.OK and trace.retention != "none":
        from repro.checkers.serialize import dump_trace

        buffer = io.StringIO()
        dump_trace(trace, buffer)
        trace_jsonl = buffer.getvalue()
    return RunReport(
        index=index,
        seed=seed,
        status=status,
        completed=outcome.result.completed,
        steps=outcome.result.steps,
        duration=duration,
        liveness_passed=outcome.liveness_passed,
        metrics=outcome.metrics,
        safety_summary=dict(summary),
        violations=violations,
        trace_jsonl=trace_jsonl,
        trace_dropped_events=trace.dropped_events,
    )


# -- worker side ------------------------------------------------------------------

# Populated in the parent before the pool forks; workers inherit it.  This
# is what lets arbitrary (unpicklable) RunSpec factories cross into workers.
_FORK_STATE: Dict[str, object] = {}


def _worker_init() -> None:
    enable_hard_aborts(True)
    # Workers must not inherit the parent's disposition to e.g. ignore
    # SIGALRM from an interrupted previous deadline.
    if hasattr(signal, "SIGALRM"):
        signal.signal(signal.SIGALRM, signal.SIG_DFL)


def _campaign_worker(
    index: int,
    seed: int,
    timeout: Optional[float],
    capture_trace: bool,
    marker_dir: str,
) -> RunReport:
    marker = os.path.join(marker_dir, f"running-{index}")
    with open(marker, "w", encoding="utf-8") as stream:
        stream.write(f"{os.getpid()}\n")
    try:
        spec: RunSpec = _FORK_STATE["spec"]  # type: ignore[assignment]
        plan: Optional[FaultPlan] = _FORK_STATE.get("fault_plan")  # type: ignore
        return execute_attempt(spec, plan, index, seed, timeout, capture_trace)
    finally:
        try:
            os.remove(marker)
        except OSError:
            pass


# -- aggregation ------------------------------------------------------------------


@dataclass
class CampaignResult:
    """All terminal reports of one campaign plus degradation-aware aggregates.

    Aggregates pool only the runs that produced data (``ok`` /
    ``safety_failed``); :attr:`missing_data` and :attr:`status_counts` make
    the excluded mass explicit instead of silently dropping it.
    """

    spec: RunSpec
    runs: int
    base_seed: int
    config: CampaignConfig
    reports: List[RunReport] = field(repr=False, default_factory=list)
    fault_plan: Optional[FaultPlan] = None
    artifacts_path: Optional[str] = None

    @property
    def label(self) -> str:
        return self.spec.label

    @property
    def status_counts(self) -> "OrderedDict[str, int]":
        """Count per terminal status — every status listed, zeros included."""
        counts = OrderedDict((status.value, 0) for status in RunStatus)
        for report in self.reports:
            counts[report.status.value] += 1
        return counts

    @property
    def data_reports(self) -> List[RunReport]:
        """The runs whose traces were produced and checked."""
        return [r for r in self.reports if r.has_data]

    @property
    def missing_data(self) -> int:
        """Runs with no checkable trace (timeout / crashed / exhausted)."""
        return len(self.reports) - len(self.data_reports)

    def _pool(self, condition: str) -> BernoulliEstimate:
        failures = 0
        trials = 0
        for report in self.data_reports:
            f, t = report.safety_summary.get(condition, (0, 0))
            failures += f
            trials += t
        return wilson_interval(failures, trials)

    @property
    def order_violation_rate(self) -> BernoulliEstimate:
        return self._pool("order")

    @property
    def duplication_violation_rate(self) -> BernoulliEstimate:
        return self._pool("no-duplication")

    @property
    def replay_violation_rate(self) -> BernoulliEstimate:
        return self._pool("no-replay")

    @property
    def causality_violations(self) -> int:
        return sum(
            report.safety_summary.get("causality", (0, 0))[0]
            for report in self.data_reports
        )

    @property
    def completion_rate(self) -> float:
        """Fraction of *data-producing* runs that finished their workload."""
        data = self.data_reports
        if not data:
            return 0.0
        return sum(1 for r in data if r.completed) / len(data)

    @property
    def any_safety_violation(self) -> bool:
        return any(r.status is RunStatus.SAFETY_FAILED for r in self.reports)

    @property
    def mean_packets_per_message(self) -> float:
        values = [
            r.metrics.per_message_packets
            for r in self.data_reports
            if r.metrics is not None and r.metrics.messages_ok > 0
        ]
        return sum(values) / len(values) if values else float("inf")

    def _timed_metrics(self) -> List[SimulationMetrics]:
        return [
            r.metrics
            for r in self.data_reports
            if r.metrics is not None and r.metrics.wall_seconds > 0.0
        ]

    @property
    def steps_per_second(self) -> float:
        """Pooled per-worker simulation throughput (total steps / total wall).

        Wall time is summed across runs, so this is the single-worker rate;
        multiply by effective parallelism for campaign throughput.
        """
        timed = self._timed_metrics()
        wall = sum(m.wall_seconds for m in timed)
        if wall <= 0.0:
            return 0.0
        return sum(m.steps for m in timed) / wall

    @property
    def events_per_second(self) -> float:
        """Pooled per-worker recording throughput (total events / total wall)."""
        timed = self._timed_metrics()
        wall = sum(m.wall_seconds for m in timed)
        if wall <= 0.0:
            return 0.0
        return sum(m.events_recorded for m in timed) / wall

    @property
    def checker_overhead_ratio(self) -> float:
        """Pooled share of run wall time spent in the online checkers."""
        timed = self._timed_metrics()
        wall = sum(m.wall_seconds for m in timed)
        if wall <= 0.0:
            return 0.0
        return sum(m.checker_seconds for m in timed) / wall

    def fingerprint(self) -> tuple:
        """Deterministic identity of the whole campaign (for replay checks)."""
        return tuple(report.fingerprint() for report in self.reports)

    def render(self) -> str:
        """The campaign's summary tables (status counts are always explicit)."""
        counts = self.status_counts
        summary = render_table(
            ["label", "runs", "jobs"] + list(counts) + ["missing data", "completion"],
            [
                [self.label or "-", self.runs, self.config.jobs]
                + list(counts.values())
                + [self.missing_data, self.completion_rate]
            ],
            title="campaign",
        )
        rates = render_table(
            ["condition", "rate", "95% interval", "trials"],
            [
                [name, est.point, f"[{est.low:.3g}, {est.high:.3g}]", est.trials]
                for name, est in (
                    ("order", self.order_violation_rate),
                    ("no-duplication", self.duplication_violation_rate),
                    ("no-replay", self.replay_violation_rate),
                )
            ]
            + [["causality (count)", self.causality_violations, "-", "-"]],
            title="pooled violation rates (completed runs only)",
        )
        blocks = [summary, "", rates]
        if self._timed_metrics():
            throughput = render_table(
                ["steps/sec", "events/sec", "checker overhead", "retention"],
                [
                    [
                        f"{self.steps_per_second:,.0f}",
                        f"{self.events_per_second:,.0f}",
                        f"{self.checker_overhead_ratio:.1%}",
                        self.spec.retain,
                    ]
                ],
                title="per-worker throughput (data runs)",
            )
            blocks += ["", throughput]
        problem_rows = [
            [
                r.index,
                r.seed,
                r.status.value,
                r.attempts,
                r.worker_deaths,
                (r.error or "; ".join(r.violations[:1]) or "-").splitlines()[0][:60],
            ]
            for r in self.reports
            if r.status is not RunStatus.OK
        ]
        if problem_rows:
            blocks += [
                "",
                render_table(
                    ["run", "seed", "status", "attempts", "deaths", "detail"],
                    problem_rows,
                    title="non-ok runs",
                ),
            ]
        if self.artifacts_path:
            blocks += ["", f"forensics artifacts: {self.artifacts_path}"]
        return "\n".join(blocks)


# -- the supervisor ---------------------------------------------------------------


@dataclass
class _RunState:
    attempt: int = 0
    deaths: int = 0
    last_failure: Optional[RunStatus] = None


def _backoff_delay(config: CampaignConfig, attempt: int) -> float:
    base = min(config.backoff_cap, config.backoff_base * (2 ** max(0, attempt - 1)))
    return base * (0.5 + random.random())  # jitter in [0.5x, 1.5x)


def _finalize(report: RunReport, state: _RunState, config: CampaignConfig) -> RunReport:
    """Stamp attempts/deaths and convert spent retry budgets."""
    status = report.status
    error = report.error
    if status in _RETRYABLE and config.retries > 0:
        status = RunStatus.EXHAUSTED_RETRIES
        error = (
            f"retries exhausted after {state.attempt + 1} attempts "
            f"(last failure: {report.status.value}): {report.error}"
        )
    return dataclasses.replace(
        report,
        status=status,
        error=error,
        attempts=state.attempt + 1,
        worker_deaths=state.deaths,
    )


def _death_report(
    index: int, base_seed: int, state: _RunState, config: CampaignConfig
) -> RunReport:
    raw = RunReport(
        index=index,
        seed=derive_run_seed(base_seed, index, state.attempt),
        status=RunStatus.CRASHED,
        error=(
            f"worker process died while executing this run "
            f"({state.deaths} death(s) observed)"
        ),
    )
    return _finalize(raw, state, config)


def run_campaign(
    spec: RunSpec,
    runs: int,
    base_seed: int = 0,
    config: Optional[CampaignConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> CampaignResult:
    """Run a supervised, fault-tolerant campaign of ``runs`` independent runs."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    config = config or CampaignConfig()
    states = {index: _RunState() for index in range(runs)}
    final: Dict[int, RunReport] = {}

    use_pool = (
        not config.in_process
        and "fork" in multiprocessing.get_all_start_methods()
    )
    if use_pool:
        _run_with_pool(spec, runs, base_seed, config, fault_plan, states, final)
    else:
        _run_in_process(spec, runs, base_seed, config, fault_plan, states, final)

    reports = [final[index] for index in sorted(final)]
    result = CampaignResult(
        spec=spec,
        runs=runs,
        base_seed=base_seed,
        config=config,
        reports=reports,
        fault_plan=fault_plan,
    )
    if config.artifacts_dir:
        from repro.resilience.artifacts import write_campaign_artifacts

        result.artifacts_path = write_campaign_artifacts(
            config.artifacts_dir, result
        )
    return result


def _classify(
    index: int,
    report: RunReport,
    state: _RunState,
    config: CampaignConfig,
    final: Dict[int, RunReport],
) -> bool:
    """Record a worker result.  Returns True when the run should be retried."""
    if report.status in _RETRYABLE and state.attempt < config.retries:
        state.attempt += 1
        state.last_failure = report.status
        time.sleep(_backoff_delay(config, state.attempt))
        return True
    final[index] = _finalize(report, state, config)
    return False


def _blame_death(
    index: int,
    base_seed: int,
    state: _RunState,
    config: CampaignConfig,
    final: Dict[int, RunReport],
) -> None:
    """Charge one observed worker death to a run; finalize it when over budget."""
    state.deaths += 1
    if state.attempt < config.retries:
        state.attempt += 1
        state.last_failure = RunStatus.CRASHED
    else:
        final[index] = _death_report(index, base_seed, state, config)


def _run_with_pool(
    spec: RunSpec,
    runs: int,
    base_seed: int,
    config: CampaignConfig,
    fault_plan: Optional[FaultPlan],
    states: Dict[int, _RunState],
    final: Dict[int, RunReport],
) -> None:
    context = multiprocessing.get_context("fork")
    _FORK_STATE["spec"] = spec
    _FORK_STATE["fault_plan"] = fault_plan
    marker_dir = tempfile.mkdtemp(prefix="repro-campaign-")
    quarantine = False
    try:
        while len(final) < runs:
            unfinished = sorted(set(range(runs)) - set(final))
            if quarantine:
                # A multi-worker pool break hid the culprit: run the
                # survivors one per pool so the next death is unambiguous.
                for index in unfinished:
                    if index in final:
                        continue
                    _pool_round(
                        [index], 1, context, marker_dir, spec, base_seed,
                        config, states, final,
                    )
                quarantine = False
            else:
                quarantine = _pool_round(
                    unfinished, config.jobs, context, marker_dir, spec,
                    base_seed, config, states, final,
                )
    finally:
        _FORK_STATE.pop("spec", None)
        _FORK_STATE.pop("fault_plan", None)
        try:
            for name in os.listdir(marker_dir):
                os.remove(os.path.join(marker_dir, name))
            os.rmdir(marker_dir)
        except OSError:
            pass


def _pool_round(
    indices: List[int],
    jobs: int,
    context,
    marker_dir: str,
    spec: RunSpec,
    base_seed: int,
    config: CampaignConfig,
    states: Dict[int, _RunState],
    final: Dict[int, RunReport],
) -> bool:
    """One executor's lifetime.  Returns True on an ambiguous pool break."""
    broken = False
    futures: Dict[object, int] = {}
    pool = ProcessPoolExecutor(
        max_workers=min(jobs, len(indices)),
        mp_context=context,
        initializer=_worker_init,
    )

    def submit(index: int) -> None:
        seed = derive_run_seed(base_seed, index, states[index].attempt)
        future = pool.submit(
            _campaign_worker,
            index,
            seed,
            config.timeout,
            config.capture_traces,
            marker_dir,
        )
        futures[future] = index

    try:
        for index in indices:
            submit(index)
        while futures:
            done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
            for future in done:
                index = futures.pop(future)
                try:
                    report = future.result()
                except BrokenExecutor:
                    broken = True
                    continue
                except Exception:
                    report = RunReport(
                        index=index,
                        seed=derive_run_seed(base_seed, index, states[index].attempt),
                        status=RunStatus.CRASHED,
                        error=traceback.format_exc(limit=8),
                    )
                retry = _classify(index, report, states[index], config, final)
                if retry and not broken:
                    try:
                        submit(index)
                    except BrokenExecutor:
                        broken = True  # attempt already bumped; next round reruns it
            if broken:
                break
    finally:
        pool.shutdown(wait=False, cancel_futures=True)

    if not broken:
        return False
    # The pool died.  Runs whose running-marker survived were executing in
    # a worker when it happened; with exactly one marker the culprit is
    # certain.  With several (parallel break) we blame nobody and let a
    # quarantine round smoke the culprit out one run at a time.
    suspects = _collect_markers(marker_dir)
    live = [index for index in suspects if index not in final]
    if len(live) == 1:
        _blame_death(live[0], base_seed, states[live[0]], config, final)
        return False
    if len(indices) == 1 and indices[0] not in final:
        # Sole run in the pool: it is the culprit even if it died before
        # its marker landed (guarantees quarantine rounds make progress).
        _blame_death(indices[0], base_seed, states[indices[0]], config, final)
        return False
    return True


def _collect_markers(marker_dir: str) -> Set[int]:
    suspects: Set[int] = set()
    try:
        names = os.listdir(marker_dir)
    except OSError:
        return suspects
    for name in names:
        if name.startswith("running-"):
            try:
                suspects.add(int(name.split("-", 1)[1]))
            except ValueError:
                pass
            try:
                os.remove(os.path.join(marker_dir, name))
            except OSError:
                pass
    return suspects


def _run_in_process(
    spec: RunSpec,
    runs: int,
    base_seed: int,
    config: CampaignConfig,
    fault_plan: Optional[FaultPlan],
    states: Dict[int, _RunState],
    final: Dict[int, RunReport],
) -> None:
    """Fallback without process isolation (hard aborts degrade to soft)."""
    for index in range(runs):
        state = states[index]
        while True:
            seed = derive_run_seed(base_seed, index, state.attempt)
            report = execute_attempt(
                spec, fault_plan, index, seed, config.timeout, config.capture_traces
            )
            if not _classify(index, report, state, config, final):
                break
