"""Process-pool campaign supervisor: Monte-Carlo with fleet discipline.

:func:`run_campaign` executes the runs of a :class:`~repro.sim.RunSpec`
in parallel worker processes with the retry/timeout/isolation behaviour a
production harness needs:

* **per-run wall-clock timeout** — a watchdog inside the worker (SIGALRM
  on the main thread, an async-exception watchdog thread elsewhere)
  interrupts hung runs (e.g. an adversary that stops returning) and
  reports terminal status ``timeout`` instead of wedging the campaign;
* **bounded retries** — runs that time out or crash are retried with
  jittered exponential backoff and a *fresh derived seed* per attempt;
  when the budget is spent the terminal status is ``exhausted_retries``;
* **worker-crash isolation** — a worker process that dies mid-run (hard
  abort, OOM kill, segfault) breaks the pool; the supervisor identifies
  the culprit from per-run running-markers, rebuilds the pool, and
  re-runs the innocent bystanders with their seeds unchanged, so one
  poisonous run cannot take the campaign down;
* **graceful degradation** — aggregation happens over the runs that
  produced data, with the missing runs reported explicitly per status
  instead of silently dropped.

Dispatch is **sharded**: runs are grouped into chunks of
``CampaignConfig.chunk_size`` (auto-sized by default) so one pool task
executes many seeds in a single worker round-trip.  Inside a shard the
worker recycles one :class:`~repro.sim.runner.RunSession` — simulator,
channels, trace and streaming checkers are reset per run instead of
rebuilt — and streams back compact tuple-encoded summaries
(:func:`encode_report`) rather than pickled ``RunReport`` objects; full
forensics (trace JSONL) ride along only for non-ok runs.  Retries,
timeouts and blame still operate per run: a retried run is resubmitted as
its own single-run shard, and worker-death quarantine rounds run one run
per pool exactly as before.

Determinism: every per-run seed is ``derive_run_seed(base_seed, index,
attempt)`` — shared with serial :func:`~repro.sim.runner.monte_carlo` —
and retry/blame decisions depend only on per-run results, so a campaign's
reports are identical for any ``jobs``/``chunk_size`` combination,
including fully serial in-process execution (wall-clock ``duration``
aside).

Workers inherit the (possibly unpicklable) spec by forking, so arbitrary
``RunSpec`` factories — lambdas included — work unchanged.  On platforms
without ``fork`` the supervisor falls back to in-process execution with
the same retry/timeout semantics (hard aborts degrade to soft).
"""

from __future__ import annotations

import ctypes
import dataclasses
import io
import multiprocessing
import os
import random
import signal
import struct
import tempfile
import threading
import time
import traceback
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.checkers.stabilization import StabilizationReport
from repro.resilience.faultplan import FaultPlan, apply_fault_plan, enable_hard_aborts
from repro.sim.metrics import SimulationMetrics
from repro.sim.runner import RunSession, RunSpec, derive_run_seed, run_once

from repro.util.stats import BernoulliEstimate, percentile, wilson_interval
from repro.util.tables import render_table

__all__ = [
    "RunStatus",
    "RunReport",
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "derive_run_seed",
    "encode_report",
    "decode_report",
]


class RunStatus(str, Enum):
    """Terminal status of one campaign run."""

    OK = "ok"
    SAFETY_FAILED = "safety_failed"
    TIMEOUT = "timeout"
    CRASHED = "crashed"
    EXHAUSTED_RETRIES = "exhausted_retries"


#: Statuses that were produced by the run itself and may be retried.
_RETRYABLE = (RunStatus.TIMEOUT, RunStatus.CRASHED)


@dataclass(frozen=True)
class RunReport:
    """Everything the supervisor kept about one run's terminal attempt."""

    index: int
    seed: int
    status: RunStatus
    attempts: int = 1
    completed: bool = False
    steps: int = 0
    duration: float = 0.0
    liveness_passed: bool = False
    worker_deaths: int = 0
    metrics: Optional[SimulationMetrics] = field(repr=False, default=None)
    #: condition -> (failures, trials); None when the run produced no trace.
    safety_summary: Optional[Dict[str, Tuple[int, int]]] = None
    violations: Tuple[str, ...] = ()
    trace_jsonl: Optional[str] = field(repr=False, default=None)
    error: Optional[str] = None
    #: Events the trace's retention mode discarded (0 for retain="full";
    #: a captured tail trace is partial when this is non-zero).
    trace_dropped_events: int = 0
    #: Convergence verdicts when the run's spec enabled stabilization
    #: monitoring; None otherwise (plain campaigns pay nothing for this).
    stabilization: Optional[StabilizationReport] = field(repr=False, default=None)

    @property
    def has_data(self) -> bool:
        """True iff the run produced a checkable trace (ok / safety_failed)."""
        return self.safety_summary is not None

    def fingerprint(self) -> tuple:
        """The deterministic identity of this report (no wall-clock fields)."""
        summary = (
            tuple(sorted(self.safety_summary.items()))
            if self.safety_summary is not None
            else None
        )
        return (
            self.index,
            self.seed,
            self.status.value,
            self.attempts,
            self.completed,
            self.steps,
            summary,
        )


# -- compact wire format ----------------------------------------------------------

#: Status <-> small-int codes for the wire tuples (order = enum order).
_STATUS_BY_CODE: Tuple[RunStatus, ...] = tuple(RunStatus)
_CODE_BY_STATUS: Dict[RunStatus, int] = {
    status: code for code, status in enumerate(_STATUS_BY_CODE)
}


def encode_report(report: RunReport) -> tuple:
    """Flatten a worker-side :class:`RunReport` into a slotted tuple.

    This is what shard workers ship back instead of pickled dataclasses:
    status as a small int, metrics as :meth:`SimulationMetrics.to_wire`,
    the safety summary as ``(condition, (failures, trials))`` pairs.  The
    heavyweight forensics field (``trace_jsonl``) is only ever non-None
    for failed runs, so ok runs — the overwhelming majority — cost a few
    dozen scalars each.  ``attempts``/``worker_deaths`` are excluded: the
    parent stamps those during classification (:func:`_finalize`), the
    worker has nothing to say about them.  Positions are the wire
    contract; :func:`decode_report` and the round-trip test change in
    lockstep.
    """
    metrics = report.metrics
    summary = report.safety_summary
    return (
        report.index,
        report.seed,
        _CODE_BY_STATUS[report.status],
        report.completed,
        report.steps,
        report.duration,
        report.liveness_passed,
        None if metrics is None else metrics.to_wire(),
        None if summary is None else tuple(summary.items()),
        report.violations,
        report.trace_jsonl,
        report.error,
        report.trace_dropped_events,
        None if report.stabilization is None else report.stabilization.to_wire(),
    )


def decode_report(wire: tuple) -> RunReport:
    """Rebuild the :class:`RunReport` a shard worker encoded."""
    metrics_wire = wire[7]
    summary_wire = wire[8]
    stabilization_wire = wire[13]
    return RunReport(
        index=wire[0],
        seed=wire[1],
        status=_STATUS_BY_CODE[wire[2]],
        completed=wire[3],
        steps=wire[4],
        duration=wire[5],
        liveness_passed=wire[6],
        metrics=(
            None if metrics_wire is None else SimulationMetrics.from_wire(metrics_wire)
        ),
        safety_summary=None if summary_wire is None else dict(summary_wire),
        violations=wire[9],
        trace_jsonl=wire[10],
        error=wire[11],
        trace_dropped_events=wire[12],
        stabilization=(
            None
            if stabilization_wire is None
            else StabilizationReport.from_wire(stabilization_wire)
        ),
    )


# -- shared-memory shard results --------------------------------------------------

#: struct format of one clean-run record: index, seed, completed, steps,
#: duration, liveness_passed, trace_dropped_events, then the 23 fields of
#: SimulationMetrics.to_wire (16 counters, wall/checker seconds, 5 more
#: counters), then (failures, trials) per safety condition.  Every int
#: rides as an unsigned 64-bit ('Q'): seeds are 64-bit FNV hashes and all
#: counters are non-negative.  Like :func:`encode_report`, the record
#: omits ``attempts``/``worker_deaths`` — the parent stamps those during
#: classification (:func:`_finalize`).
_SHM_FIXED_FMT = "<QQBQdBQ" + "Q" * 16 + "dd" + "Q" * 5

#: Shard results from shared-memory-capable workers: a tagged tuple
#: instead of the legacy list of wire tuples.
_SHM_TAG = "shm-v1"


def _shm_eligible(report: RunReport, conditions: Optional[Tuple[str, ...]]):
    """The condition order this OK report packs under, or None.

    Only perfectly regular reports fit fixed-width records: clean status,
    no violations/forensics/error text, no stabilization payload, and a
    safety summary over the shard's condition tuple (the first eligible
    report elects it; a mismatching later report falls back to pickling).
    """
    if (
        report.status is not RunStatus.OK
        or report.metrics is None
        or report.safety_summary is None
        or report.violations
        or report.trace_jsonl is not None
        or report.error is not None
        or report.stabilization is not None
    ):
        return None
    report_conditions = tuple(report.safety_summary)
    if conditions is not None and report_conditions != conditions:
        return None
    return report_conditions


def _pack_shard_reports(reports: List[RunReport]):
    """Split a shard's reports into a shared-memory blob + pickled rest.

    Returns the tagged tuple the parent unpacks, or None when shared
    memory is unavailable/pointless (no eligible reports, creation
    failed) — the caller then ships the legacy pickled list.  The worker
    unregisters the segment from its resource tracker: ownership (and
    the unlink) transfers to the parent with the name.
    """
    try:
        from multiprocessing import resource_tracker, shared_memory
    except ImportError:  # pragma: no cover - stdlib always has it on linux
        return None
    conditions: Optional[Tuple[str, ...]] = None
    fixed: List[RunReport] = []
    rest: List[RunReport] = []
    for report in reports:
        elected = _shm_eligible(report, conditions)
        if elected is None:
            rest.append(report)
        else:
            conditions = elected
            fixed.append(report)
    if not fixed:
        return None
    fmt = _SHM_FIXED_FMT + "QQ" * len(conditions)
    record_size = struct.calcsize(fmt)
    pack_into = struct.Struct(fmt).pack_into
    try:
        segment = shared_memory.SharedMemory(
            create=True, size=record_size * len(fixed)
        )
    except (OSError, ValueError):
        return None
    try:
        for slot, report in enumerate(fixed):
            summary = report.safety_summary
            values = [
                report.index,
                report.seed,
                1 if report.completed else 0,
                report.steps,
                report.duration,
                1 if report.liveness_passed else 0,
                report.trace_dropped_events,
            ]
            values.extend(report.metrics.to_wire())
            for condition in conditions:
                failures, trials = summary[condition]
                values.append(failures)
                values.append(trials)
            pack_into(segment.buf, slot * record_size, *values)
    except (struct.error, ValueError):
        # A counter overflowed the fixed field (or the buffer): give the
        # whole shard to the pickle path rather than ship a torn blob.
        segment.close()
        try:
            segment.unlink()
        except OSError:
            pass
        return None
    name = segment.name
    segment.close()
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass
    return (
        _SHM_TAG,
        name,
        len(fixed),
        conditions,
        [encode_report(report) for report in rest],
    )


def _unpack_shard_result(result) -> List[RunReport]:
    """Decode a shard worker's return value (tagged shm tuple or legacy list)."""
    if isinstance(result, list):
        return [decode_report(wire) for wire in result]
    tag, name, count, conditions, rest_wires = result
    if tag != _SHM_TAG:
        raise RuntimeError(f"unknown shard result tag {tag!r}")
    from multiprocessing import shared_memory

    fmt = _SHM_FIXED_FMT + "QQ" * len(conditions)
    record = struct.Struct(fmt)
    reports: List[RunReport] = []
    segment = shared_memory.SharedMemory(name=name)
    try:
        for slot in range(count):
            values = record.unpack_from(segment.buf, slot * record.size)
            metrics_wire = values[7:30]
            pairs = values[30:]
            reports.append(
                RunReport(
                    index=values[0],
                    seed=values[1],
                    status=RunStatus.OK,
                    completed=bool(values[2]),
                    steps=values[3],
                    duration=values[4],
                    liveness_passed=bool(values[5]),
                    trace_dropped_events=values[6],
                    metrics=SimulationMetrics.from_wire(metrics_wire),
                    safety_summary={
                        condition: (pairs[2 * i], pairs[2 * i + 1])
                        for i, condition in enumerate(conditions)
                    },
                )
            )
    finally:
        segment.close()
        try:
            segment.unlink()
        except OSError:
            pass
    reports.extend(decode_report(wire) for wire in rest_wires)
    return reports


@dataclass(frozen=True)
class CampaignConfig:
    """Supervisor knobs (all orthogonal to the spec under test)."""

    jobs: int = 1
    timeout: Optional[float] = None  # per-run wall-clock seconds
    retries: int = 0  # extra attempts after the first
    backoff_base: float = 0.05  # seconds; doubles per attempt, jittered
    backoff_cap: float = 2.0
    artifacts_dir: Optional[str] = None
    capture_traces: bool = True  # archive traces of non-ok runs
    in_process: bool = False  # debugging: skip the pool entirely
    chunk_size: Optional[int] = None  # runs per pool task; None = auto
    #: Ship clean shard results as fixed-width records in one
    #: multiprocessing.shared_memory segment per shard instead of pickled
    #: tuples through the result queue.  Purely a transport optimization:
    #: fingerprints are bit-identical either way (pinned by tests), and
    #: workers fall back to pickling when a segment cannot be created.
    shared_memory: bool = True

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 (or None for auto)")

    def resolve_chunk_size(self, runs: int) -> int:
        """The shard size actually used for a campaign of ``runs`` runs.

        Auto mode targets ~4 shards per worker: big enough to amortize the
        pool round-trip and per-shard session warm-up, small enough that a
        straggler or a mid-shard worker death forfeits little work.  Capped
        at 32 so huge campaigns still rebalance across workers.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, min(32, -(-runs // (self.jobs * 4))))


class _AttemptTimeout(Exception):
    """Raised by the in-worker watchdog when a run blows its wall budget."""


def _can_use_sigalrm() -> bool:
    """SIGALRM works only on the main thread of the main interpreter."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def _deadline(seconds: Optional[float]):
    """Wall-clock guard: interrupt the protected block after ``seconds``.

    Two implementations behind one interface:

    * **SIGALRM** (preferred) — a real interval timer that can break out of
      almost anything, including blocking C calls.  Only legal on the main
      thread of the main interpreter; ``signal.signal`` raises
      ``ValueError`` anywhere else.
    * **watchdog thread** (fallback) — a daemon timer that injects
      :class:`_AttemptTimeout` into the protected thread via
      ``PyThreadState_SetAsyncExc``.  Async exceptions land only at
      bytecode boundaries, so a block wedged inside a single C call is not
      interrupted until it returns — fine for the hot loops this guards
      (simulator steps), weaker than SIGALRM for arbitrary code.

    The fallback makes the timeout machinery usable from worker threads —
    e.g. ``run_campaign(in_process=True)`` called off the main thread, or
    embedders running campaigns from a thread pool — instead of silently
    running unguarded as the SIGALRM-only version did.
    """
    if seconds is None:
        yield
        return

    if _can_use_sigalrm():
        def _on_alarm(signum, frame):
            raise _AttemptTimeout()

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        return

    # Watchdog-thread fallback.  ``armed`` (under the lock) closes the race
    # where the timer fires concurrently with a normal exit: once disarmed,
    # a late-firing timer does nothing, and any exception already injected
    # but not yet raised is cleared before control leaves the guard.
    target_id = threading.get_ident()
    lock = threading.Lock()
    state = {"armed": True}

    def _fire() -> None:
        with lock:
            if not state["armed"]:
                return
            ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_ulong(target_id), ctypes.py_object(_AttemptTimeout)
            )

    timer = threading.Timer(seconds, _fire)
    timer.daemon = True
    timer.start()
    try:
        yield
    finally:
        timer.cancel()
        with lock:
            state["armed"] = False
        # Clear a pending (injected but not yet raised) async exception so
        # it cannot detonate in the caller's code after the guard exits.
        ctypes.pythonapi.PyThreadState_SetAsyncExc(ctypes.c_ulong(target_id), None)


def execute_attempt(
    spec: RunSpec,
    fault_plan: Optional[FaultPlan],
    index: int,
    seed: int,
    timeout: Optional[float],
    capture_trace: bool,
    session: Optional[RunSession] = None,
) -> RunReport:
    """One supervised attempt of one run, classified into a :class:`RunReport`.

    Runs in the current process — the workers call this, and the shrink
    minimizer reuses it in-process for its probes.  ``session`` (built over
    the *same* ``spec``) recycles the simulator across calls; fault plans
    still apply, injected as a per-run adversary-factory override, and a
    run that dies mid-flight invalidates the session so the next attempt
    rebuilds clean.
    """
    # Specs that supervise themselves (the relay fabric's FabricSpec) take
    # the whole run: they interpret the fault plan's topology events
    # directly, so the single-link adversary-override path is bypassed.
    run_direct = getattr(spec, "run_supervised", None)
    effective = (
        spec
        if fault_plan is None or run_direct is not None
        else apply_fault_plan(spec, fault_plan, index)
    )
    started = time.monotonic()
    try:
        with _deadline(timeout):
            if run_direct is not None:
                outcome = run_direct(fault_plan, index, seed)
            elif session is None:
                outcome = run_once(effective, seed)
            else:
                # apply_fault_plan returns `spec` itself (same object) when
                # this run's projected plan is empty, so identity tells us
                # whether an override is in play.
                override = None if effective is spec else effective.adversary_factory
                outcome = session.run(seed, adversary_factory=override)
    except _AttemptTimeout:
        return RunReport(
            index=index,
            seed=seed,
            status=RunStatus.TIMEOUT,
            duration=time.monotonic() - started,
            error=f"run exceeded the {timeout}s wall-clock budget",
        )
    except Exception:
        return RunReport(
            index=index,
            seed=seed,
            status=RunStatus.CRASHED,
            duration=time.monotonic() - started,
            error=traceback.format_exc(limit=16),
        )
    duration = time.monotonic() - started
    reports = outcome.safety.all_reports
    passed = all(not report.violations for report in reports)
    status = RunStatus.OK if passed else RunStatus.SAFETY_FAILED
    summary = {
        report.condition: (report.failure_count, report.trials)
        for report in reports
    }
    violations: Tuple[str, ...] = ()
    if not passed:
        violations = tuple(
            f"{v.condition}@{v.event_index}: {v.detail}"
            for report in reports
            for v in report.violations[:8]
        )
    trace = outcome.result.trace
    trace_jsonl = None
    if capture_trace and status is not RunStatus.OK and trace.retention != "none":
        from repro.checkers.serialize import dump_trace

        buffer = io.StringIO()
        dump_trace(trace, buffer)
        trace_jsonl = buffer.getvalue()
    return RunReport(
        index=index,
        seed=seed,
        status=status,
        completed=outcome.result.completed,
        steps=outcome.result.steps,
        duration=duration,
        liveness_passed=outcome.liveness_passed,
        metrics=outcome.metrics,
        safety_summary=summary,
        violations=violations,
        trace_jsonl=trace_jsonl,
        trace_dropped_events=trace.dropped_events,
        stabilization=outcome.stabilization,
    )


# -- worker side ------------------------------------------------------------------

# Populated in the parent before the pool forks; workers inherit it.  This
# is what lets arbitrary (unpicklable) RunSpec factories cross into workers.
_FORK_STATE: Dict[str, object] = {}


def _worker_init() -> None:
    enable_hard_aborts(True)
    # Workers must not inherit the parent's disposition to e.g. ignore
    # SIGALRM from an interrupted previous deadline.
    if hasattr(signal, "SIGALRM"):
        signal.signal(signal.SIGALRM, signal.SIG_DFL)


def _campaign_shard_worker(
    items: List[Tuple[int, int]],
    timeout: Optional[float],
    capture_trace: bool,
    marker_dir: str,
    use_shared_memory: bool = True,
) -> object:
    """Execute one shard of ``(index, seed)`` runs in this worker process.

    One :class:`RunSession` serves the whole shard, so per-run cost is a
    reset instead of a full harness rebuild.  Clean results ship back as
    fixed-width records in one shared-memory segment per shard (see
    :func:`_pack_shard_reports`); irregular runs — and every run when
    shared memory is off or unavailable — ride the legacy pickled
    :func:`encode_report` tuples.  The running-marker protocol is per
    *run*, not per shard: exactly the run executing when a worker dies
    leaves a marker behind, so the parent's blame logic keeps per-run
    resolution.  Results completed before a mid-shard death are lost with
    the worker — those runs simply re-run under unchanged seeds, which is
    harmless because reports are deterministic functions of (index, seed).
    """
    spec: RunSpec = _FORK_STATE["spec"]  # type: ignore[assignment]
    plan: Optional[FaultPlan] = _FORK_STATE.get("fault_plan")  # type: ignore
    session = RunSession(spec)
    reports: List[RunReport] = []
    for index, seed in items:
        # The blame protocol reads only the filename; an empty file via raw
        # os.open is a third the cost of a buffered text write, which counts
        # when every short run in the shard pays for one.
        marker = os.path.join(marker_dir, f"running-{index}")
        os.close(os.open(marker, os.O_CREAT | os.O_WRONLY, 0o644))
        try:
            report = execute_attempt(
                spec, plan, index, seed, timeout, capture_trace, session=session
            )
        finally:
            try:
                os.remove(marker)
            except OSError:
                pass
        reports.append(report)
    if use_shared_memory:
        packed = _pack_shard_reports(reports)
        if packed is not None:
            return packed
    return [encode_report(report) for report in reports]


# -- aggregation ------------------------------------------------------------------


@dataclass
class CampaignResult:
    """All terminal reports of one campaign plus degradation-aware aggregates.

    Aggregates pool only the runs that produced data (``ok`` /
    ``safety_failed``); :attr:`missing_data` and :attr:`status_counts` make
    the excluded mass explicit instead of silently dropping it.
    """

    spec: RunSpec
    runs: int
    base_seed: int
    config: CampaignConfig
    reports: List[RunReport] = field(repr=False, default_factory=list)
    fault_plan: Optional[FaultPlan] = None
    artifacts_path: Optional[str] = None
    #: True wall-clock duration of the whole campaign (dispatch included);
    #: 0.0 on results built by hand.  Deliberately outside fingerprint().
    wall_seconds: float = 0.0

    @property
    def label(self) -> str:
        return self.spec.label

    @property
    def status_counts(self) -> "OrderedDict[str, int]":
        """Count per terminal status — every status listed, zeros included."""
        counts = OrderedDict((status.value, 0) for status in RunStatus)
        for report in self.reports:
            counts[report.status.value] += 1
        return counts

    @property
    def data_reports(self) -> List[RunReport]:
        """The runs whose traces were produced and checked."""
        return [r for r in self.reports if r.has_data]

    @property
    def missing_data(self) -> int:
        """Runs with no checkable trace (timeout / crashed / exhausted)."""
        return len(self.reports) - len(self.data_reports)

    def _pool(self, condition: str) -> BernoulliEstimate:
        failures = 0
        trials = 0
        for report in self.data_reports:
            f, t = report.safety_summary.get(condition, (0, 0))
            failures += f
            trials += t
        return wilson_interval(failures, trials)

    @property
    def order_violation_rate(self) -> BernoulliEstimate:
        return self._pool("order")

    @property
    def duplication_violation_rate(self) -> BernoulliEstimate:
        return self._pool("no-duplication")

    @property
    def replay_violation_rate(self) -> BernoulliEstimate:
        return self._pool("no-replay")

    @property
    def causality_violations(self) -> int:
        return sum(
            report.safety_summary.get("causality", (0, 0))[0]
            for report in self.data_reports
        )

    @property
    def completion_rate(self) -> float:
        """Fraction of *data-producing* runs that finished their workload."""
        data = self.data_reports
        if not data:
            return 0.0
        return sum(1 for r in data if r.completed) / len(data)

    @property
    def any_safety_violation(self) -> bool:
        return any(r.status is RunStatus.SAFETY_FAILED for r in self.reports)

    @property
    def mean_packets_per_message(self) -> float:
        values = [
            r.metrics.per_message_packets
            for r in self.data_reports
            if r.metrics is not None and r.metrics.messages_ok > 0
        ]
        return sum(values) / len(values) if values else float("inf")

    def _timed_metrics(self) -> List[SimulationMetrics]:
        return [
            r.metrics
            for r in self.data_reports
            if r.metrics is not None and r.metrics.wall_seconds > 0.0
        ]

    @property
    def steps_per_second(self) -> float:
        """Pooled *aggregate-CPU* simulation rate (total steps / summed run wall).

        Per-run wall times are summed across runs, so under parallel
        workers this is the single-worker rate — it deliberately does NOT
        grow with ``jobs``.  For campaign throughput as experienced by the
        caller, use :attr:`wall_steps_per_second`.
        """
        timed = self._timed_metrics()
        wall = sum(m.wall_seconds for m in timed)
        if wall <= 0.0:
            return 0.0
        return sum(m.steps for m in timed) / wall

    @property
    def events_per_second(self) -> float:
        """Pooled aggregate-CPU recording rate (total events / summed run wall)."""
        timed = self._timed_metrics()
        wall = sum(m.wall_seconds for m in timed)
        if wall <= 0.0:
            return 0.0
        return sum(m.events_recorded for m in timed) / wall

    @property
    def wall_steps_per_second(self) -> float:
        """True campaign throughput: data-run steps over campaign wall time.

        Divides by the supervisor's single wall-clock measurement, so this
        *does* scale with workers and shrinks with dispatch overhead — the
        number the batched-dispatch benchmark compares.  0.0 on results
        that were built without a measured campaign duration.
        """
        if self.wall_seconds <= 0.0:
            return 0.0
        return sum(m.steps for m in self._timed_metrics()) / self.wall_seconds

    @property
    def wall_events_per_second(self) -> float:
        """True campaign recording throughput over campaign wall time."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return (
            sum(m.events_recorded for m in self._timed_metrics()) / self.wall_seconds
        )

    @property
    def checker_overhead_ratio(self) -> float:
        """Pooled share of run wall time spent in the online checkers."""
        timed = self._timed_metrics()
        wall = sum(m.wall_seconds for m in timed)
        if wall <= 0.0:
            return 0.0
        return sum(m.checker_seconds for m in timed) / wall

    # -- relay drop accounting (zero on single-link campaigns) ---------------------

    @property
    def dropped_overflow(self) -> int:
        """Pooled frames lost to full relay FIFOs across all data runs."""
        return sum(
            r.metrics.dropped_overflow
            for r in self.data_reports
            if r.metrics is not None
        )

    @property
    def dropped_down(self) -> int:
        """Pooled frames lost to link-down wires across all data runs."""
        return sum(
            r.metrics.dropped_down
            for r in self.data_reports
            if r.metrics is not None
        )

    # -- stabilization aggregates (empty/zero when no run was corrupted) -----------

    @property
    def stabilization_reports(self) -> List[StabilizationReport]:
        """Per-run stabilization verdicts of the data runs that carried one."""
        return [
            r.stabilization
            for r in self.data_reports
            if r.stabilization is not None
        ]

    @property
    def corruptions_injected(self) -> int:
        """Total state corruptions observed across all data runs."""
        return sum(s.corruptions for s in self.stabilization_reports)

    @property
    def corrupted_runs(self) -> int:
        """Data runs that suffered at least one state corruption."""
        return sum(1 for s in self.stabilization_reports if s.corruptions > 0)

    @property
    def stabilized_runs(self) -> int:
        """Corrupted data runs whose every corruption reconverged."""
        return sum(1 for s in self.stabilization_reports if s.stabilized)

    @property
    def stabilized_rate(self) -> float:
        """Fraction of corrupted runs that fully reconverged (1.0 when none)."""
        corrupted = self.corrupted_runs
        if corrupted == 0:
            return 1.0
        return self.stabilized_runs / corrupted

    def _convergence_values(self, attribute: str) -> List[float]:
        return [
            float(getattr(record, attribute))
            for s in self.stabilization_reports
            for record in s.records
        ]

    @property
    def convergence_events_p50(self) -> float:
        """Median events-to-convergence over every converged corruption."""
        return percentile(self._convergence_values("events"), 0.50)

    @property
    def convergence_events_p99(self) -> float:
        """Tail (p99) events-to-convergence over every converged corruption."""
        return percentile(self._convergence_values("events"), 0.99)

    @property
    def convergence_datagrams_p50(self) -> float:
        """Median datagrams-to-convergence over every converged corruption."""
        return percentile(self._convergence_values("datagrams"), 0.50)

    @property
    def convergence_datagrams_p99(self) -> float:
        """Tail (p99) datagrams-to-convergence over every converged corruption."""
        return percentile(self._convergence_values("datagrams"), 0.99)

    def fingerprint(self) -> tuple:
        """Deterministic identity of the whole campaign (for replay checks)."""
        return tuple(report.fingerprint() for report in self.reports)

    def render(self) -> str:
        """The campaign's summary tables (status counts are always explicit)."""
        counts = self.status_counts
        summary = render_table(
            ["label", "runs", "jobs"] + list(counts) + ["missing data", "completion"],
            [
                [self.label or "-", self.runs, self.config.jobs]
                + list(counts.values())
                + [self.missing_data, self.completion_rate]
            ],
            title="campaign",
        )
        rates = render_table(
            ["condition", "rate", "95% interval", "trials"],
            [
                [name, est.point, f"[{est.low:.3g}, {est.high:.3g}]", est.trials]
                for name, est in (
                    ("order", self.order_violation_rate),
                    ("no-duplication", self.duplication_violation_rate),
                    ("no-replay", self.replay_violation_rate),
                )
            ]
            + [["causality (count)", self.causality_violations, "-", "-"]],
            title="pooled violation rates (completed runs only)",
        )
        blocks = [summary, "", rates]
        if self.corruptions_injected > 0:
            converged = sum(s.converged for s in self.stabilization_reports)
            stabilization = render_table(
                [
                    "corruptions",
                    "converged",
                    "corrupted runs",
                    "stabilized",
                    "events p50",
                    "events p99",
                    "datagrams p50",
                    "datagrams p99",
                ],
                [
                    [
                        self.corruptions_injected,
                        converged,
                        self.corrupted_runs,
                        f"{self.stabilized_rate:.1%}",
                        f"{self.convergence_events_p50:.0f}",
                        f"{self.convergence_events_p99:.0f}",
                        f"{self.convergence_datagrams_p50:.0f}",
                        f"{self.convergence_datagrams_p99:.0f}",
                    ]
                ],
                title="stabilization (convergence over corrupted data runs)",
            )
            blocks += ["", stabilization]
        if self.dropped_overflow or self.dropped_down:
            drops = render_table(
                ["dropped (overflow)", "dropped (link down)"],
                [[self.dropped_overflow, self.dropped_down]],
                title="relay drop accounting (pooled over data runs)",
            )
            blocks += ["", drops]
        if self._timed_metrics():
            wall_steps = (
                f"{self.wall_steps_per_second:,.0f}"
                if self.wall_seconds > 0.0
                else "-"
            )
            wall_events = (
                f"{self.wall_events_per_second:,.0f}"
                if self.wall_seconds > 0.0
                else "-"
            )
            throughput = render_table(
                [
                    "steps/sec (cpu)",
                    "steps/sec (wall)",
                    "events/sec (cpu)",
                    "events/sec (wall)",
                    "checker overhead",
                    "retention",
                ],
                [
                    [
                        f"{self.steps_per_second:,.0f}",
                        wall_steps,
                        f"{self.events_per_second:,.0f}",
                        wall_events,
                        f"{self.checker_overhead_ratio:.1%}",
                        self.spec.retain,
                    ]
                ],
                title="throughput (data runs; cpu = per-worker, wall = campaign)",
            )
            blocks += ["", throughput]
        problem_rows = [
            [
                r.index,
                r.seed,
                r.status.value,
                r.attempts,
                r.worker_deaths,
                (r.error or "; ".join(r.violations[:1]) or "-").splitlines()[0][:60],
            ]
            for r in self.reports
            if r.status is not RunStatus.OK
        ]
        if problem_rows:
            blocks += [
                "",
                render_table(
                    ["run", "seed", "status", "attempts", "deaths", "detail"],
                    problem_rows,
                    title="non-ok runs",
                ),
            ]
        if self.artifacts_path:
            blocks += ["", f"forensics artifacts: {self.artifacts_path}"]
        return "\n".join(blocks)


# -- the supervisor ---------------------------------------------------------------


@dataclass
class _RunState:
    attempt: int = 0
    deaths: int = 0
    last_failure: Optional[RunStatus] = None


def _backoff_delay(config: CampaignConfig, attempt: int) -> float:
    base = min(config.backoff_cap, config.backoff_base * (2 ** max(0, attempt - 1)))
    return base * (0.5 + random.random())  # jitter in [0.5x, 1.5x)


def _finalize(report: RunReport, state: _RunState, config: CampaignConfig) -> RunReport:
    """Stamp attempts/deaths and convert spent retry budgets."""
    status = report.status
    error = report.error
    if status in _RETRYABLE and config.retries > 0:
        status = RunStatus.EXHAUSTED_RETRIES
        error = (
            f"retries exhausted after {state.attempt + 1} attempts "
            f"(last failure: {report.status.value}): {report.error}"
        )
    attempts = state.attempt + 1
    if (
        status is report.status
        and attempts == report.attempts
        and state.deaths == report.worker_deaths
    ):
        # Clean first attempt — the defaults already say so.  Skipping the
        # field-introspecting dataclasses.replace here matters: the parent
        # finalizes every report of every campaign through this function.
        return report
    return dataclasses.replace(
        report,
        status=status,
        error=error,
        attempts=attempts,
        worker_deaths=state.deaths,
    )


def _death_report(
    index: int, base_seed: int, state: _RunState, config: CampaignConfig
) -> RunReport:
    raw = RunReport(
        index=index,
        seed=derive_run_seed(base_seed, index, state.attempt),
        status=RunStatus.CRASHED,
        error=(
            f"worker process died while executing this run "
            f"({state.deaths} death(s) observed)"
        ),
    )
    return _finalize(raw, state, config)


def run_campaign(
    spec: RunSpec,
    runs: int,
    base_seed: int = 0,
    config: Optional[CampaignConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> CampaignResult:
    """Run a supervised, fault-tolerant campaign of ``runs`` independent runs."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    config = config or CampaignConfig()
    states = {index: _RunState() for index in range(runs)}
    final: Dict[int, RunReport] = {}

    use_pool = (
        not config.in_process
        and "fork" in multiprocessing.get_all_start_methods()
    )
    started = time.monotonic()
    if use_pool:
        _run_with_pool(spec, runs, base_seed, config, fault_plan, states, final)
    else:
        _run_in_process(spec, runs, base_seed, config, fault_plan, states, final)
    wall_seconds = time.monotonic() - started

    reports = [final[index] for index in sorted(final)]
    result = CampaignResult(
        spec=spec,
        runs=runs,
        base_seed=base_seed,
        config=config,
        reports=reports,
        fault_plan=fault_plan,
        wall_seconds=wall_seconds,
    )
    if config.artifacts_dir:
        from repro.resilience.artifacts import write_campaign_artifacts

        result.artifacts_path = write_campaign_artifacts(
            config.artifacts_dir, result
        )
    return result


def _classify(
    index: int,
    report: RunReport,
    state: _RunState,
    config: CampaignConfig,
    final: Dict[int, RunReport],
) -> bool:
    """Record a worker result.  Returns True when the run should be retried."""
    if report.status in _RETRYABLE and state.attempt < config.retries:
        state.attempt += 1
        state.last_failure = report.status
        time.sleep(_backoff_delay(config, state.attempt))
        return True
    final[index] = _finalize(report, state, config)
    return False


def _blame_death(
    index: int,
    base_seed: int,
    state: _RunState,
    config: CampaignConfig,
    final: Dict[int, RunReport],
) -> None:
    """Charge one observed worker death to a run; finalize it when over budget."""
    state.deaths += 1
    if state.attempt < config.retries:
        state.attempt += 1
        state.last_failure = RunStatus.CRASHED
    else:
        final[index] = _death_report(index, base_seed, state, config)


def _run_with_pool(
    spec: RunSpec,
    runs: int,
    base_seed: int,
    config: CampaignConfig,
    fault_plan: Optional[FaultPlan],
    states: Dict[int, _RunState],
    final: Dict[int, RunReport],
) -> None:
    context = multiprocessing.get_context("fork")
    _FORK_STATE["spec"] = spec
    _FORK_STATE["fault_plan"] = fault_plan
    marker_dir = tempfile.mkdtemp(prefix="repro-campaign-")
    chunk = config.resolve_chunk_size(runs)
    quarantine = False
    try:
        while len(final) < runs:
            unfinished = sorted(set(range(runs)) - set(final))
            if quarantine:
                # A multi-worker pool break hid the culprit: run the
                # survivors one per pool so the next death is unambiguous.
                for index in unfinished:
                    if index in final:
                        continue
                    _pool_round(
                        [index], 1, 1, context, marker_dir, spec, base_seed,
                        config, states, final,
                    )
                quarantine = False
            else:
                quarantine = _pool_round(
                    unfinished, config.jobs, chunk, context, marker_dir, spec,
                    base_seed, config, states, final,
                )
    finally:
        _FORK_STATE.pop("spec", None)
        _FORK_STATE.pop("fault_plan", None)
        try:
            for name in os.listdir(marker_dir):
                os.remove(os.path.join(marker_dir, name))
            os.rmdir(marker_dir)
        except OSError:
            pass


def _pool_round(
    indices: List[int],
    jobs: int,
    chunk: int,
    context,
    marker_dir: str,
    spec: RunSpec,
    base_seed: int,
    config: CampaignConfig,
    states: Dict[int, _RunState],
    final: Dict[int, RunReport],
) -> bool:
    """One executor's lifetime.  Returns True on an ambiguous pool break.

    Dispatch is sharded: ``chunk`` consecutive runs ride each pool task
    (see :func:`_campaign_shard_worker`).  Runs flagged for retry are
    resubmitted as single-run shards — a retry already paid a backoff
    sleep, so batching it with strangers would only couple their fates.
    """
    broken = False
    futures: Dict[object, List[int]] = {}
    pool = ProcessPoolExecutor(
        max_workers=min(jobs, len(indices)),
        mp_context=context,
        initializer=_worker_init,
    )

    def submit_shard(shard: List[int]) -> None:
        items = [
            (index, derive_run_seed(base_seed, index, states[index].attempt))
            for index in shard
        ]
        future = pool.submit(
            _campaign_shard_worker,
            items,
            config.timeout,
            config.capture_traces,
            marker_dir,
            config.shared_memory,
        )
        futures[future] = shard

    try:
        for start in range(0, len(indices), chunk):
            submit_shard(indices[start : start + chunk])
        while futures:
            done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
            for future in done:
                shard = futures.pop(future)
                reports: Optional[List[RunReport]] = None
                shard_error: Optional[str] = None
                try:
                    reports = _unpack_shard_result(future.result())
                except BrokenExecutor:
                    broken = True
                    continue
                except Exception:
                    # Harness failure outside execute_attempt's own guards
                    # (it classifies per-run exceptions itself): every run
                    # of the shard is charged a crash, retryable as usual.
                    shard_error = traceback.format_exc(limit=8)
                retry_indices: List[int] = []
                if reports is None:
                    for index in shard:
                        report = RunReport(
                            index=index,
                            seed=derive_run_seed(
                                base_seed, index, states[index].attempt
                            ),
                            status=RunStatus.CRASHED,
                            error=shard_error,
                        )
                        if _classify(index, report, states[index], config, final):
                            retry_indices.append(index)
                else:
                    for report in reports:
                        index = report.index
                        if _classify(index, report, states[index], config, final):
                            retry_indices.append(index)
                for index in retry_indices:
                    if broken:
                        break  # attempt already bumped; next round reruns it
                    try:
                        submit_shard([index])
                    except BrokenExecutor:
                        broken = True
            if broken:
                break
    finally:
        pool.shutdown(wait=False, cancel_futures=True)

    if not broken:
        return False
    # The pool died.  Runs whose running-marker survived were executing in
    # a worker when it happened; with exactly one marker the culprit is
    # certain.  With several (parallel break) we blame nobody and let a
    # quarantine round smoke the culprit out one run at a time.
    suspects = _collect_markers(marker_dir)
    live = [index for index in suspects if index not in final]
    if len(live) == 1:
        _blame_death(live[0], base_seed, states[live[0]], config, final)
        return False
    if len(indices) == 1 and indices[0] not in final:
        # Sole run in the pool: it is the culprit even if it died before
        # its marker landed (guarantees quarantine rounds make progress).
        _blame_death(indices[0], base_seed, states[indices[0]], config, final)
        return False
    return True


def _collect_markers(marker_dir: str) -> Set[int]:
    suspects: Set[int] = set()
    try:
        names = os.listdir(marker_dir)
    except OSError:
        return suspects
    for name in names:
        if name.startswith("running-"):
            try:
                suspects.add(int(name.split("-", 1)[1]))
            except ValueError:
                pass
            try:
                os.remove(os.path.join(marker_dir, name))
            except OSError:
                pass
    return suspects


def _run_in_process(
    spec: RunSpec,
    runs: int,
    base_seed: int,
    config: CampaignConfig,
    fault_plan: Optional[FaultPlan],
    states: Dict[int, _RunState],
    final: Dict[int, RunReport],
) -> None:
    """Fallback without process isolation (hard aborts degrade to soft).

    One :class:`RunSession` serves the whole campaign — the serial analogue
    of shard-level simulator reuse, and what keeps the in-process
    fingerprint bit-identical to pool execution.
    """
    session = RunSession(spec)
    for index in range(runs):
        state = states[index]
        while True:
            seed = derive_run_seed(base_seed, index, state.attempt)
            report = execute_attempt(
                spec,
                fault_plan,
                index,
                seed,
                config.timeout,
                config.capture_traces,
                session=session,
            )
            if not _classify(index, report, state, config, final):
                break
