"""Failure forensics: archive every non-ok campaign run for replay.

A campaign that tolerates faults is only useful if the faults it survived
can be studied afterwards.  For every non-``ok`` run the supervisor hands
us, :func:`write_campaign_artifacts` dumps a self-contained directory:

.. code-block:: text

    <artifacts_dir>/
      campaign-20260805-141530-123456/
        campaign.json            # config echo, status counts, label
        run-00007-timeout/
          meta.json              # seed, status, attempts, error, steps, ...
          safety.json            # per-condition trials/failures + violations
          faultplan.json         # the scripted schedule (when one was used)
          trace.jsonl            # the recorded execution (repro.checkers.serialize)

``meta.json`` carries everything needed to re-run the attempt:
``repro.resilience.supervisor.derive_run_seed`` is pure, and the fault
plan is the declarative script, so seed + plan + spec description is a
complete repro.  :func:`load_run_artifact` reads a run directory back
(trace included) for the checkers or the shrinker.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional

from repro.checkers.serialize import load_trace
from repro.resilience.faultplan import FaultPlan

__all__ = [
    "campaign_dir_name",
    "write_run_artifact",
    "write_campaign_artifacts",
    "load_run_artifact",
]


def campaign_dir_name(stamp: Optional[float] = None) -> str:
    """A collision-resistant, sortable directory name for one campaign."""
    stamp = time.time() if stamp is None else stamp
    base = time.strftime("%Y%m%d-%H%M%S", time.localtime(stamp))
    fraction = int((stamp % 1.0) * 1_000_000)
    return f"campaign-{base}-{fraction:06d}"


def _write_json(path: str, data: dict) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(data, stream, indent=2, sort_keys=True)
        stream.write("\n")


def write_run_artifact(
    campaign_path: str,
    report,
    fault_plan: Optional[FaultPlan] = None,
    spec_label: str = "",
    base_seed: int = 0,
) -> str:
    """Archive one non-ok run under the campaign directory; returns its path."""
    run_dir = os.path.join(
        campaign_path, f"run-{report.index:05d}-{report.status.value}"
    )
    os.makedirs(run_dir, exist_ok=True)
    _write_json(
        os.path.join(run_dir, "meta.json"),
        {
            "index": report.index,
            "seed": report.seed,
            "base_seed": base_seed,
            "status": report.status.value,
            "attempts": report.attempts,
            "worker_deaths": report.worker_deaths,
            "completed": report.completed,
            "steps": report.steps,
            "duration_seconds": report.duration,
            "liveness_passed": report.liveness_passed,
            "error": report.error,
            "spec_label": spec_label,
            "has_trace": report.trace_jsonl is not None,
            "trace_dropped_events": report.trace_dropped_events,
            # Corruption forensics: each converged record embeds the
            # corruption's scramble seed and scrambled-field list (the same
            # pair the trace's Corruption events and the fault plan carry),
            # so a run can be re-scrambled bit-identically from meta alone.
            "stabilization": (
                None
                if report.stabilization is None
                else {
                    "corruptions": report.stabilization.corruptions,
                    "converged": report.stabilization.converged,
                    "window": report.stabilization.window,
                    "stabilized": report.stabilization.stabilized,
                    "records": [
                        {
                            "station": record.station,
                            "fields": list(record.fields),
                            "seed": record.seed,
                            "events": record.events,
                            "datagrams": record.datagrams,
                            "wall_seconds": record.wall_seconds,
                        }
                        for record in report.stabilization.records
                    ],
                }
            ),
        },
    )
    if report.safety_summary is not None:
        _write_json(
            os.path.join(run_dir, "safety.json"),
            {
                "summary": {
                    condition: {"failures": f, "trials": t}
                    for condition, (f, t) in report.safety_summary.items()
                },
                "violations": list(report.violations),
            },
        )
    if fault_plan is not None:
        fault_plan.for_run(report.index).save(
            os.path.join(run_dir, "faultplan.json")
        )
    if report.trace_jsonl is not None:
        with open(os.path.join(run_dir, "trace.jsonl"), "w", encoding="utf-8") as f:
            f.write(report.trace_jsonl)
    return run_dir


def write_campaign_artifacts(root: str, result) -> str:
    """Archive a whole campaign (manifest + one directory per non-ok run)."""
    from repro.resilience.supervisor import RunStatus

    campaign_path = os.path.join(root, campaign_dir_name())
    os.makedirs(campaign_path, exist_ok=True)
    for report in result.reports:
        if report.status is RunStatus.OK:
            continue
        write_run_artifact(
            campaign_path,
            report,
            fault_plan=result.fault_plan,
            spec_label=result.label,
            base_seed=result.base_seed,
        )
    _write_json(
        os.path.join(campaign_path, "campaign.json"),
        {
            "label": result.label,
            "runs": result.runs,
            "base_seed": result.base_seed,
            "status_counts": dict(result.status_counts),
            "missing_data": result.missing_data,
            "completion_rate": result.completion_rate,
            "jobs": result.config.jobs,
            "timeout": result.config.timeout,
            "retries": result.config.retries,
            "retain": result.spec.retain,
            "fault_plan": (
                result.fault_plan.to_dict() if result.fault_plan else None
            ),
        },
    )
    return campaign_path


def load_run_artifact(run_dir: str) -> dict:
    """Read one archived run back: meta, safety, fault plan, and trace.

    Returns a dict with keys ``meta`` (always), ``safety`` / ``fault_plan``
    / ``trace`` (present when the corresponding file was archived; the
    trace comes back as a :class:`~repro.checkers.trace.Trace`).
    """
    with open(os.path.join(run_dir, "meta.json"), "r", encoding="utf-8") as stream:
        data: dict = {"meta": json.load(stream)}
    safety_path = os.path.join(run_dir, "safety.json")
    if os.path.exists(safety_path):
        with open(safety_path, "r", encoding="utf-8") as stream:
            data["safety"] = json.load(stream)
    plan_path = os.path.join(run_dir, "faultplan.json")
    if os.path.exists(plan_path):
        data["fault_plan"] = FaultPlan.load(plan_path)
    trace_path = os.path.join(run_dir, "trace.jsonl")
    if os.path.exists(trace_path):
        with open(trace_path, "r", encoding="utf-8") as stream:
            data["trace"] = load_trace(stream)
    return data
