"""``fail_rate × topology`` sweep campaigns over the relay fabric.

The paper's end-to-end setting is the protocol running between the source
and destination of a faulty network (Section 1); the Markov
:class:`~repro.transport.network.LinkState` machinery models each link's
failure process.  This module lights up that axis: a grid of
``(topology, fail_rate)`` cells, each driven through the batched campaign
engine (:func:`~repro.resilience.supervisor.run_campaign`) so timeouts,
retries, shared-memory result streaming and forensics all apply per cell.

Each cell reports delivery rate (messages delivered over messages
submitted, pooled over runs), completion and CLEAN rates, convergence
percentiles (p50/p99 fabric ticks to stream completion, over completed
runs), and the split drop accounting (``dropped_overflow`` vs
``dropped_down``).  :meth:`RelaySweepResult.render` prints the grid;
:meth:`RelaySweepResult.to_markdown` emits the EXPERIMENTS.md table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import ConfigurationError
from repro.resilience.supervisor import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
)
from repro.transport.fabric import FabricSpec
from repro.util.stats import percentile
from repro.util.tables import render_table

__all__ = [
    "RelaySweepConfig",
    "SweepCell",
    "RelaySweepResult",
    "run_relay_sweep",
]

#: Default grid: every topology the fabric builds, from fault-free up to
#: link failure rates where delivery visibly degrades.
_DEFAULT_TOPOLOGIES: Tuple[str, ...] = ("line", "ring", "mesh")
_DEFAULT_FAIL_RATES: Tuple[float, ...] = (0.0, 0.01, 0.05, 0.1)
_DEFAULT_SIZES: Dict[str, int] = {"line": 4, "ring": 6, "mesh": 3}


@dataclass(frozen=True)
class RelaySweepConfig:
    """The sweep grid plus the per-cell fabric parameters."""

    topologies: Tuple[str, ...] = _DEFAULT_TOPOLOGIES
    fail_rates: Tuple[float, ...] = _DEFAULT_FAIL_RATES
    sizes: Optional[Dict[str, int]] = None  # topology -> size; defaults apply
    runs: int = 10
    base_seed: int = 0
    messages: int = 40
    window: int = 8
    steps_per_tick: int = 4
    max_ticks: int = 20_000
    engine: str = "kernel"
    paths: int = 1

    def __post_init__(self) -> None:
        if not self.topologies:
            raise ConfigurationError("sweep needs at least one topology")
        if not self.fail_rates:
            raise ConfigurationError("sweep needs at least one fail_rate")
        for rate in self.fail_rates:
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(
                    f"fail_rate must be in [0, 1), got {rate!r}"
                )
        if self.runs < 1:
            raise ConfigurationError("runs must be >= 1")

    def size_for(self, topology: str) -> int:
        if self.sizes and topology in self.sizes:
            return self.sizes[topology]
        return _DEFAULT_SIZES.get(topology, 4)

    def spec_for(self, topology: str, fail_rate: float) -> FabricSpec:
        """The per-cell spec (validation happens in FabricSpec itself)."""
        return FabricSpec(
            topology=topology,
            size=self.size_for(topology),
            messages=self.messages,
            window=self.window,
            steps_per_tick=self.steps_per_tick,
            max_ticks=self.max_ticks,
            fail_rate=fail_rate,
            engine=self.engine,
            paths=self.paths,
            label=f"{topology}@{fail_rate:g}",
        )


@dataclass(frozen=True)
class SweepCell:
    """One ``(topology, fail_rate)`` grid point's pooled campaign summary."""

    topology: str
    size: int
    fail_rate: float
    runs: int
    delivery_rate: float  # pooled delivered / submitted over data runs
    completion_rate: float  # fraction of data runs that finished the stream
    clean_rate: float  # fraction of runs with an OK (CLEAN) verdict
    ticks_p50: float  # median fabric ticks to completion (completed runs)
    ticks_p99: float  # tail fabric ticks to completion (completed runs)
    dropped_overflow: int
    dropped_down: int

    @classmethod
    def from_campaign(
        cls, topology: str, size: int, fail_rate: float, result: CampaignResult
    ) -> "SweepCell":
        submitted = delivered = 0
        for report in result.data_reports:
            if report.metrics is not None:
                submitted += report.metrics.messages_submitted
                delivered += report.metrics.messages_delivered
        completed_ticks = [
            float(r.steps) for r in result.data_reports if r.completed
        ]
        ok_runs = sum(
            1
            for r in result.reports
            if r.status.value == "ok" and r.liveness_passed
        )
        return cls(
            topology=topology,
            size=size,
            fail_rate=fail_rate,
            runs=result.runs,
            delivery_rate=(delivered / submitted) if submitted else 0.0,
            completion_rate=result.completion_rate,
            clean_rate=ok_runs / result.runs if result.runs else 0.0,
            ticks_p50=percentile(completed_ticks, 0.50),
            ticks_p99=percentile(completed_ticks, 0.99),
            dropped_overflow=result.dropped_overflow,
            dropped_down=result.dropped_down,
        )


_HEADERS = [
    "topology",
    "fail_rate",
    "runs",
    "delivery",
    "completion",
    "clean",
    "ticks p50",
    "ticks p99",
    "drop ovf",
    "drop down",
]


def _cell_row(cell: SweepCell) -> List[object]:
    return [
        f"{cell.topology}-{cell.size}",
        f"{cell.fail_rate:g}",
        cell.runs,
        f"{cell.delivery_rate:.1%}",
        f"{cell.completion_rate:.1%}",
        f"{cell.clean_rate:.1%}",
        f"{cell.ticks_p50:.0f}",
        f"{cell.ticks_p99:.0f}",
        cell.dropped_overflow,
        cell.dropped_down,
    ]


@dataclass(frozen=True)
class RelaySweepResult:
    """Every cell of one sweep, in grid order (topology-major)."""

    config: RelaySweepConfig
    cells: Tuple[SweepCell, ...]
    wall_seconds: float = 0.0
    campaigns: Tuple[CampaignResult, ...] = field(repr=False, default=())

    def render(self) -> str:
        """The sweep grid as one aligned table."""
        table = render_table(
            _HEADERS,
            [_cell_row(cell) for cell in self.cells],
            title=(
                f"relay sweep ({self.config.engine} engine, "
                f"{self.config.runs} runs/cell, "
                f"{self.config.messages} messages/run)"
            ),
        )
        return f"{table}\nsweep wall time: {self.wall_seconds:.1f}s"

    def to_markdown(self) -> str:
        """A GitHub-flavoured markdown table (EXPERIMENTS.md format)."""
        lines = [
            "| " + " | ".join(_HEADERS) + " |",
            "|" + "|".join("---" for _ in _HEADERS) + "|",
        ]
        for cell in self.cells:
            lines.append(
                "| " + " | ".join(str(v) for v in _cell_row(cell)) + " |"
            )
        return "\n".join(lines)


def run_relay_sweep(
    config: Optional[RelaySweepConfig] = None,
    campaign: Optional[CampaignConfig] = None,
    keep_campaigns: bool = False,
) -> RelaySweepResult:
    """Drive every grid cell through the batched campaign engine.

    Cell seeds are offset so no two cells share a seed sequence
    (``base_seed + cell_index * runs``); within a cell the campaign's own
    per-run seed derivation applies.  ``keep_campaigns`` retains each
    cell's full :class:`CampaignResult` for callers that want per-run
    forensics; the summary cells are always built.
    """
    from time import monotonic

    config = config or RelaySweepConfig()
    campaign = campaign or CampaignConfig()
    cells: List[SweepCell] = []
    results: List[CampaignResult] = []
    started = monotonic()
    index = 0
    for topology in config.topologies:
        size = config.size_for(topology)
        for fail_rate in config.fail_rates:
            spec = config.spec_for(topology, fail_rate)
            result = run_campaign(
                spec,
                runs=config.runs,
                base_seed=config.base_seed + index * config.runs,
                config=campaign,
            )
            cells.append(
                SweepCell.from_campaign(topology, size, fail_rate, result)
            )
            if keep_campaigns:
                results.append(result)
            index += 1
    return RelaySweepResult(
        config=config,
        cells=tuple(cells),
        wall_seconds=monotonic() - started,
        campaigns=tuple(results),
    )
