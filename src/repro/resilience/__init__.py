"""Resilient campaign engine: supervision, fault scripting, forensics, shrinking.

The paper is about surviving worst-case faults; this package gives the
experiment harness the same discipline.  :mod:`~repro.resilience.supervisor`
runs Monte-Carlo campaigns in isolated worker processes with timeouts,
retries and graceful degradation; :mod:`~repro.resilience.faultplan`
scripts deterministic, JSON-serializable fault schedules;
:mod:`~repro.resilience.artifacts` archives every non-ok run for replay;
:mod:`~repro.resilience.shrink` minimizes failing repros.
"""

from repro.resilience.artifacts import (
    load_run_artifact,
    write_campaign_artifacts,
    write_run_artifact,
)
from repro.resilience.faultplan import (
    AbortAt,
    CrashAt,
    DropWindow,
    DuplicateBurst,
    FaultEvent,
    FaultInjectionAbort,
    FaultPlan,
    HangAt,
    ScriptedAdversary,
    StallWindow,
    apply_fault_plan,
)
from repro.resilience.shrink import ShrinkResult, shrink_repro, status_matcher
from repro.resilience.supervisor import (
    CampaignConfig,
    CampaignResult,
    RunReport,
    RunStatus,
    derive_run_seed,
    run_campaign,
)

__all__ = [
    "AbortAt",
    "CampaignConfig",
    "CampaignResult",
    "CrashAt",
    "DropWindow",
    "DuplicateBurst",
    "FaultEvent",
    "FaultInjectionAbort",
    "FaultPlan",
    "HangAt",
    "RunReport",
    "RunStatus",
    "ScriptedAdversary",
    "ShrinkResult",
    "StallWindow",
    "apply_fault_plan",
    "derive_run_seed",
    "load_run_artifact",
    "run_campaign",
    "shrink_repro",
    "status_matcher",
    "write_campaign_artifacts",
    "write_run_artifact",
]
