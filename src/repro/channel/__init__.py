"""The semi-reliable communication channel substrate (Section 2.3)."""

from repro.channel.channel import Channel, ChannelPair, PacketInfo

__all__ = ["Channel", "ChannelPair", "PacketInfo"]
