"""The communication channel of Section 2.3.

A channel is a passive store with the four actions of the model:

* ``send_pkt(p)`` — the sending station places packet ``p`` on the channel;
  the channel assigns a unique identifier and announces
  ``new_pkt(id, length(p))`` to the adversary;
* ``deliver_pkt(id)`` — the adversary orders delivery of a previously sent
  packet; the channel responds with ``receive_pkt(p)``.

The channel itself never loses, duplicates or reorders anything — *all*
indeterminism lives in the adversary, exactly as the paper specifies
("Properties such as fairness and causality are treated as restrictions on
the behavior of the adversary, not of the communication channel").  A
packet, once sent, may be delivered any number of times, including zero;
asking for an identifier that was never issued raises
:class:`~repro.core.exceptions.UnknownPacketError` (the causality axiom is
enforced by construction).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.bitstrings import BitString
from repro.core.events import ChannelId
from repro.core.exceptions import UnknownPacketError
from repro.core.packets import (
    Packet,
    encode_packet,
    make_data_packet,
    make_poll_packet,
)
from repro.util.hotpath import trusted_constructor

__all__ = ["PacketInfo", "Channel", "ChannelPair"]

# One PacketInfo is minted per send_pkt — the hot path pays for it.
_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(frozen=True, **_SLOTS)
class PacketInfo:
    """What ``new_pkt(id, l)`` reveals to the adversary: identity and length.

    This is the *entire* view the adversary gets of a packet — the
    oblivious-adversary assumption of Section 2.5 is enforced by never
    handing adversaries anything richer than this record.
    """

    channel: ChannelId
    packet_id: int
    length_bits: int


_make_packet_info = trusted_constructor(
    PacketInfo, "channel", "packet_id", "length_bits"
)


class Channel:
    """One unidirectional communication channel.

    Parameters
    ----------
    channel_id:
        Which direction this channel carries (``T->R`` or ``R->T``).
    on_new_pkt:
        Optional callback invoked with the :class:`PacketInfo` of every
        sent packet — how the adversary learns of ``new_pkt`` events.
    """

    def __init__(
        self,
        channel_id: ChannelId,
        on_new_pkt: Optional[Callable[[PacketInfo], None]] = None,
    ) -> None:
        self.channel_id = channel_id
        self._on_new_pkt = on_new_pkt
        self._store: Dict[int, Packet] = {}
        # Flat packet tuples parked by the kernel engine at run exit
        # (see repro.kernel.engine).  Exactly one of _store/_flat_store
        # holds the channel's contents; materialisation happens on first
        # object-level access, so campaign runs that never re-read their
        # packets skip the rebuild entirely.
        self._flat_store: Optional[Dict[int, tuple]] = None

        self._next_id = 0
        self._sent_count = 0
        self._delivered_count = 0
        self._bits_sent = 0

    def reset(self) -> None:
        """Empty the channel for a new execution, keeping identity and wiring.

        Identifiers restart from 0 — a reused channel must mint the exact
        id sequence a fresh one would, or replay-style adversaries and the
        determinism guarantees of campaign sharding break.
        """
        self._store.clear()
        self._flat_store = None
        self._next_id = 0
        self._sent_count = 0
        self._delivered_count = 0
        self._bits_sent = 0

    def _materialize(self) -> None:
        """Rebuild packet objects from kernel-parked flat tuples.

        The kernel engine leaves the store as flat int tuples (its native
        representation) and this rebuilds ``DataPacket``/``PollPacket``
        objects on first access.  Nonces are interned through a cache —
        retried packets reuse the same (value, length) pairs and
        ``BitString`` is an immutable value type, so sharing is
        unobservable.
        """
        flat = self._flat_store
        if flat is None:
            return
        self._flat_store = None
        trusted = BitString._trusted
        cache: Dict[tuple, BitString] = {}
        cache_get = cache.get
        store = self._store
        if self.channel_id is ChannelId.T_TO_R:
            for pid, (message, rv, rl, tv, tl) in flat.items():
                key = (rv, rl)
                rho = cache_get(key)
                if rho is None:
                    rho = cache[key] = trusted(rv, rl)
                key = (tv, tl)
                tau = cache_get(key)
                if tau is None:
                    tau = cache[key] = trusted(tv, tl)
                store[pid] = make_data_packet(message, rho, tau)
        else:
            for pid, (rv, rl, tv, tl, retry) in flat.items():
                key = (rv, rl)
                rho = cache_get(key)
                if rho is None:
                    rho = cache[key] = trusted(rv, rl)
                key = (tv, tl)
                tau = cache_get(key)
                if tau is None:
                    tau = cache[key] = trusted(tv, tl)
                store[pid] = make_poll_packet(rho, tau, retry)

    # -- model actions ------------------------------------------------------------

    def send_pkt(self, packet: Packet) -> PacketInfo:
        """``send_pkt(p)``: store the packet, mint an id, announce new_pkt."""
        packet_id = self._next_id
        self._next_id += 1
        self._store[packet_id] = packet
        self._sent_count += 1
        length_bits = packet.wire_length_bits
        self._bits_sent += length_bits
        info = _make_packet_info(self.channel_id, packet_id, length_bits)
        if self._on_new_pkt is not None:
            self._on_new_pkt(info)
        return info

    def deliver_pkt(self, packet_id: int) -> Packet:
        """``deliver_pkt(id)``: produce the stored packet (any number of times)."""
        try:
            packet = self._store[packet_id]
        except KeyError:
            if self._flat_store is None:
                raise UnknownPacketError(packet_id) from None
            self._materialize()
            try:
                packet = self._store[packet_id]
            except KeyError:
                raise UnknownPacketError(packet_id) from None
        self._delivered_count += 1
        return packet

    # -- inspection (for metrics and adversaries' legitimate view) ------------------

    def peek(self, packet_id: int) -> Packet:
        """Read a stored packet's contents WITHOUT delivering it.

        This deliberately breaks the oblivious-adversary assumption of
        Section 2.5 and exists only for the content-aware extension
        adversaries (:mod:`repro.extensions.content_aware`), which study
        what happens when that assumption is dropped.  Core-model
        adversaries must never call it.
        """
        if self._flat_store is not None:
            self._materialize()
        try:
            return self._store[packet_id]
        except KeyError:
            raise UnknownPacketError(packet_id) from None

    def has_packet(self, packet_id: int) -> bool:
        """True iff the id was ever issued by this channel."""
        if self._flat_store is not None:
            return packet_id in self._flat_store
        return packet_id in self._store

    def packet_length_bits(self, packet_id: int) -> int:
        """The length the adversary may observe for a given id."""
        if self._flat_store is not None:
            self._materialize()
        try:
            return self._store[packet_id].wire_length_bits
        except KeyError:
            raise UnknownPacketError(packet_id) from None

    @property
    def sent_count(self) -> int:
        """Total ``send_pkt`` actions so far."""
        return self._sent_count

    @property
    def delivered_count(self) -> int:
        """Total ``deliver_pkt`` actions so far (deliveries, not packets)."""
        return self._delivered_count

    @property
    def bits_sent(self) -> int:
        """Total wire bits placed on this channel (communication cost)."""
        return self._bits_sent

    def all_packet_ids(self) -> List[int]:
        """Every id ever issued — the adversary's replay arsenal."""
        if self._flat_store is not None:
            return list(self._flat_store.keys())
        return list(self._store.keys())

    def __repr__(self) -> str:
        return (
            f"Channel({self.channel_id}, sent={self._sent_count}, "
            f"delivered={self._delivered_count})"
        )


class ChannelPair:
    """The two channels of Figure 1, wired with a shared new_pkt listener."""

    def __init__(
        self, on_new_pkt: Optional[Callable[[PacketInfo], None]] = None
    ) -> None:
        self.t_to_r = Channel(ChannelId.T_TO_R, on_new_pkt)
        self.r_to_t = Channel(ChannelId.R_TO_T, on_new_pkt)

    def reset(self) -> None:
        """Reset both directions (see :meth:`Channel.reset`)."""
        self.t_to_r.reset()
        self.r_to_t.reset()

    def by_id(self, channel_id: ChannelId) -> Channel:
        """Look a channel up by direction."""
        if channel_id == ChannelId.T_TO_R:
            return self.t_to_r
        if channel_id == ChannelId.R_TO_T:
            return self.r_to_t
        raise ValueError(f"unknown channel id {channel_id!r}")

    @property
    def total_bits_sent(self) -> int:
        """Combined communication cost across both directions."""
        return self.t_to_r.bits_sent + self.r_to_t.bits_sent

    @property
    def total_packets_sent(self) -> int:
        """Combined packet count across both directions."""
        return self.t_to_r.sent_count + self.r_to_t.sent_count
