"""Analytic bounds of Section 4, as executable formulas."""

from repro.analysis.bounds import (
    ErrorBudget,
    expected_handshake_packets,
    fixed_nonce_replay_probability,
    generation_after_errors,
    nonce_bits_after_errors,
    replay_attack_curve,
    theorem3_budget,
    union_bound,
)

__all__ = [
    "ErrorBudget",
    "expected_handshake_packets",
    "fixed_nonce_replay_probability",
    "generation_after_errors",
    "nonce_bits_after_errors",
    "replay_attack_curve",
    "theorem3_budget",
    "union_bound",
]
