"""Analytic bounds from Section 4, as executable formulas.

The experiments compare measured rates against these closed forms:

* the per-message error budget of Theorem 3 (four lemmas × ε/4), with the
  per-policy union bound Σ_t bound(t)·2^(−size(t, ε));
* nonce growth as a function of adversarial error count (the storage claim
  of Section 1);
* expected communication cost of the three-packet handshake under
  independent loss;
* the success probability of the Section 3 replay attack against the
  fixed-nonce strawman (the curve experiment E2's measurements track).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core.params import SizeBoundPolicy

__all__ = [
    "ErrorBudget",
    "theorem3_budget",
    "union_bound",
    "generation_after_errors",
    "nonce_bits_after_errors",
    "expected_handshake_packets",
    "fixed_nonce_replay_probability",
    "replay_attack_curve",
]


@dataclass(frozen=True)
class ErrorBudget:
    """How Theorem 3 spends ε across its four lemmas.

    The proof splits the failure event by where the OK-causing packet
    originated (α₋₁ / α₀ / α₁) and whether a second delivery occurred,
    charging each of the four cases at most ε/4.
    """

    epsilon: float
    duplicate_delivery: float  # Lemma 4: stale packet matches the fresh rho
    wrong_message_ack: float  # Lemma 5: tau collision across messages
    stale_ok_cause: float  # Lemma 6: OK caused by a pre-extension packet
    initial_prefix_collision: float  # P(prefix(tau_0, tau_0^R)) in Theorem 3

    @property
    def total(self) -> float:
        return (
            self.duplicate_delivery
            + self.wrong_message_ack
            + self.stale_ok_cause
            + self.initial_prefix_collision
        )


def theorem3_budget(epsilon: float) -> ErrorBudget:
    """The ε/4-per-lemma split Theorem 3's proof uses."""
    quarter = epsilon / 4.0
    return ErrorBudget(
        epsilon=epsilon,
        duplicate_delivery=quarter,
        wrong_message_ack=quarter,
        stale_ok_cause=quarter,
        initial_prefix_collision=quarter,
    )


def union_bound(policy: SizeBoundPolicy, epsilon: float, horizon: int = 64) -> float:
    """Σ_t bound(t)·2^(−size(t, ε)) — each lemma's total guessing mass.

    A policy supports the paper's accounting when this is ≤ ε/4; see
    :meth:`~repro.core.params.SizeBoundPolicy.is_sound`.
    """
    return policy.total_failure_mass(epsilon, horizon)


def generation_after_errors(policy: SizeBoundPolicy, errors: int) -> int:
    """The generation ``t`` reached after ``errors`` counted mismatches.

    Generation ``t`` absorbs ``bound(t)`` errors before extending, so the
    reached generation is the smallest ``t`` whose cumulative bound exceeds
    the error count.
    """
    if errors < 0:
        raise ValueError("errors must be non-negative")
    t = 1
    absorbed = 0
    while absorbed + policy.bound(t) <= errors:
        absorbed += policy.bound(t)
        t += 1
        if t > 10_000:
            raise OverflowError("error count beyond any realistic generation")
    return t


def nonce_bits_after_errors(
    policy: SizeBoundPolicy, epsilon: float, errors: int
) -> int:
    """Nonce length (bits) after ``errors`` mismatches on one message.

    This is the paper's storage claim made quantitative: the length is a
    function of the *current message's* error count only, independent of
    protocol history, and resets to ``size(1, ε)`` afterwards.
    """
    t = generation_after_errors(policy, errors)
    return policy.cumulative_size(t, epsilon)


def expected_handshake_packets(
    loss: float, steady_state: bool = True
) -> float:
    """Expected packets per message under independent per-packet loss.

    The handshake needs three one-way successes (poll, data, ack) — two in
    steady state, where the previous ack pre-arms the transmitter with the
    receiver's challenge.  Each success costs ``1/(1 − loss)`` transmissions
    in expectation under independent loss with prompt retransmission.  This
    is a first-order model (it ignores wasted crossings), good enough to
    predict the shape of experiment E7's curve.
    """
    if not 0.0 <= loss < 1.0:
        raise ValueError("loss must be in [0, 1)")
    required = 2.0 if steady_state else 3.0
    return required / (1.0 - loss)


def fixed_nonce_replay_probability(nonce_bits: int, distinct_packets: int) -> float:
    """P[Section 3 attack succeeds] against a fixed ``nonce_bits`` challenge.

    Each archived packet embeds an independent historical challenge; the
    attack wins if any equals the receiver's fresh ``nonce_bits``-bit
    challenge: ``1 − (1 − 2^−b)^n``.
    """
    if nonce_bits < 1:
        raise ValueError("nonce_bits must be >= 1")
    if distinct_packets < 0:
        raise ValueError("distinct_packets must be non-negative")
    miss = 1.0 - 2.0 ** (-nonce_bits)
    return 1.0 - miss ** distinct_packets


def replay_attack_curve(nonce_bits: int, archive_sizes: List[int]) -> List[float]:
    """The theoretical attack-success curve for a sweep of archive sizes."""
    return [fixed_nonce_replay_probability(nonce_bits, n) for n in archive_sizes]
