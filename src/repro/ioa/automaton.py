"""The I/O automaton base class.

An I/O automaton couples a :class:`~repro.ioa.actions.Signature` with a
transition relation.  We use the standard executable specialisation:

* inputs are *input-enabled* — :meth:`handle_input` must accept any input
  action in any state;
* the automaton volunteers its locally controlled (output/internal) steps
  through :meth:`locally_controlled_steps`, each of which, when chosen by
  the scheduler, is performed by :meth:`perform`.

State lives in the subclass; the framework never inspects it, matching the
model's view of states as opaque.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

from repro.ioa.actions import Action, ActionKind, Signature

__all__ = ["IOAutomaton"]


class IOAutomaton(ABC):
    """Base class for executable I/O automata.

    Subclasses define ``signature`` (a class or instance attribute) and the
    two transition hooks.  The scheduler in :mod:`repro.ioa.scheduler`
    drives instances; :mod:`repro.ioa.composition` synchronises them.
    """

    signature: Signature

    def __init__(self, name: str) -> None:
        self.name = name

    # -- transition relation -----------------------------------------------------

    @abstractmethod
    def handle_input(self, action: Action) -> None:
        """Apply an input action.  Must succeed in every state."""

    def locally_controlled_steps(self) -> List[Action]:
        """Actions (output or internal) enabled in the current state.

        Default: none.  Purely reactive automata (e.g. the stations, whose
        outputs fire synchronously with their inputs in our atomic-step
        modelling) can leave this empty.
        """
        return []

    def perform(self, action: Action) -> None:
        """Execute one locally controlled action previously offered.

        Default: raise — subclasses that offer steps must implement it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} offered no locally controlled actions"
        )

    # -- helpers -----------------------------------------------------------------

    def accepts(self, action: Action) -> bool:
        """True iff the action name is an input of this automaton."""
        return action.name in self.signature.inputs

    def classify(self, action: Action) -> ActionKind:
        """Classify an action against this automaton's signature."""
        return self.signature.kind_of(action.name)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
