"""Composition of I/O automata per [LT87].

The composition of compatible automata is itself an automaton: an output
action of one component synchronises with the equally named input actions
of every other component, in one indivisible step.  The paper's system
``D(A, ADV)`` is exactly such a composition (Figure 1); the test suite
builds it with the adapters in :mod:`repro.ioa.adapters` and cross-checks
it against the operational simulator.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.ioa.actions import Action, ActionKind, Signature
from repro.ioa.automaton import IOAutomaton

__all__ = ["Composition", "CompositionError"]


class CompositionError(ValueError):
    """The components cannot legally be composed."""


class Composition:
    """A compatible set of automata acting as one system.

    Raises :class:`CompositionError` unless every pair of component
    signatures is compatible (disjoint outputs, private internals).
    """

    def __init__(self, components: Sequence[IOAutomaton]) -> None:
        if not components:
            raise CompositionError("a composition needs at least one component")
        names = [c.name for c in components]
        if len(set(names)) != len(names):
            raise CompositionError(f"component names must be unique: {names}")
        for i, left in enumerate(components):
            for right in components[i + 1 :]:
                if not left.signature.compatible_with(right.signature):
                    raise CompositionError(
                        f"{left.name} and {right.name} have incompatible signatures"
                    )
        self._components: List[IOAutomaton] = list(components)
        self._by_name: Dict[str, IOAutomaton] = {c.name: c for c in components}
        self.signature = self._composite_signature()

    def _composite_signature(self) -> Signature:
        """Composite signature: outputs stay outputs; inputs that some
        component outputs become internal to the composition's environment
        view — here we keep them as outputs per the classical definition
        (an output of any component is an output of the composition)."""
        inputs = set()
        outputs = set()
        internals = set()
        for component in self._components:
            outputs |= component.signature.outputs
            internals |= component.signature.internals
        for component in self._components:
            inputs |= component.signature.inputs
        # Inputs matched by some component's output are no longer inputs of
        # the composition (they are driven internally).
        inputs -= outputs
        return Signature(
            inputs=frozenset(inputs),
            outputs=frozenset(outputs),
            internals=frozenset(internals),
        )

    # -- access ------------------------------------------------------------------

    @property
    def components(self) -> Sequence[IOAutomaton]:
        return self._components

    def component(self, name: str) -> IOAutomaton:
        """Look up one component by name."""
        return self._by_name[name]

    # -- execution steps -------------------------------------------------------------

    def apply(self, actor: IOAutomaton, action: Action) -> None:
        """Execute one action controlled by ``actor`` and synchronise it.

        ``actor`` performs the action; if it is an output, every component
        whose signature lists the name as an input receives it in the same
        step (atomic, matching the paper's atomicity assumption).
        """
        kind = actor.classify(action)
        if kind == ActionKind.INPUT:
            raise CompositionError(
                f"{actor.name} does not control input action {action.name!r}"
            )
        actor.perform(action)
        if kind == ActionKind.OUTPUT:
            self.broadcast(action, exclude=actor)

    def inject(self, action: Action) -> None:
        """Feed an environment input of the composition to its takers."""
        if action.name not in self.signature.inputs:
            raise CompositionError(
                f"{action.name!r} is not an input of the composition"
            )
        self.broadcast(action, exclude=None)

    def broadcast(self, action: Action, exclude: IOAutomaton = None) -> None:
        """Deliver ``action`` to every component that lists it as input."""
        for component in self._components:
            if component is exclude:
                continue
            if component.accepts(action):
                component.handle_input(action)

    def enabled_steps(self) -> List:
        """All (component, action) pairs currently offered for scheduling."""
        steps = []
        for component in self._components:
            for action in component.locally_controlled_steps():
                steps.append((component, action))
        return steps

    def __repr__(self) -> str:
        return f"Composition({[c.name for c in self._components]})"
