"""A scheduler for compositions: turns enabled steps into executions.

The I/O automata model leaves scheduling to an abstract "fair" oracle; the
paper folds that indeterminism into the adversary.  This scheduler mirrors
that: outbox flushes (pending synchronous outputs) run eagerly — they model
the paper's atomicity assumption that a module's outputs follow its input
with no intervening event — then the environment may submit, RETRY fires on
its cadence, and the adversary takes its move.

:func:`build_system` assembles the full ``D(A, ADV)`` composition of
Figure 1 from the operational components, and :class:`SystemScheduler`
runs it while recording both the formal :class:`~repro.ioa.execution.Execution`
and a :class:`~repro.checkers.trace.Trace` so the Section 2.6 checkers can
judge the run exactly as they judge the operational simulator's.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.adversary.base import Adversary
from repro.checkers.trace import Trace
from repro.core.events import (
    ChannelId,
    CrashR,
    CrashT,
    Ok,
    PktDelivered,
    PktSent,
    ReceiveMsg,
    Retry,
    SendMsg,
)
from repro.core.protocol import DataLink
from repro.ioa.actions import Action, ActionKind
from repro.ioa.adapters import (
    AdversaryAutomaton,
    ChannelAutomaton,
    EnvironmentAutomaton,
    RMAutomaton,
    TMAutomaton,
)
from repro.ioa.composition import Composition
from repro.ioa.execution import Execution

__all__ = ["build_system", "SystemScheduler"]


def build_system(
    link: DataLink, adversary: Adversary, payloads: Sequence[bytes]
) -> Composition:
    """Compose ``D(A, ADV)`` plus the higher-layer environment (Figure 1)."""
    return Composition(
        [
            EnvironmentAutomaton(payloads),
            TMAutomaton(link.transmitter),
            RMAutomaton(link.receiver),
            ChannelAutomaton(ChannelId.T_TO_R),
            ChannelAutomaton(ChannelId.R_TO_T),
            AdversaryAutomaton(adversary),
        ]
    )


class SystemScheduler:
    """Drives a :func:`build_system` composition to completion or budget."""

    def __init__(self, system: Composition, retry_every: int = 4) -> None:
        if retry_every < 1:
            raise ValueError("retry_every must be >= 1")
        self._system = system
        self._retry_every = retry_every
        self.execution = Execution()
        self.trace = Trace()
        self._env: EnvironmentAutomaton = system.component("ENV")
        self._rm: RMAutomaton = system.component("RM")
        self._adv: AdversaryAutomaton = system.component("ADV")
        self._rounds = 0

    def run(self, max_rounds: int = 100_000) -> bool:
        """Run scheduler rounds until the environment is done.

        Returns True on completion, False when the budget expired.
        """
        while self._rounds < max_rounds:
            if self._env.done:
                return True
            self.round()
        return self._env.done

    def round(self) -> None:
        """One scheduling round: env, RETRY cadence, adversary, flushes."""
        self._rounds += 1
        self._flush_outboxes()
        for component, action in self._steps_of(self._env):
            self._perform(component, action)
            self._flush_outboxes()
        if self._rounds % self._retry_every == 0 or self._adv.retry_requested:
            self._adv.retry_requested = False
            self._perform(self._rm, Action("RETRY"))
            self._flush_outboxes()
        for component, action in self._steps_of(self._adv):
            self._perform(component, action)
            self._flush_outboxes()

    # -- internals ------------------------------------------------------------------

    def _steps_of(self, target) -> List:
        return [
            (component, action)
            for component, action in self._system.enabled_steps()
            if component is target
        ]

    def _flush_outboxes(self) -> None:
        """Eagerly perform pending synchronous outputs (atomicity)."""
        progressed = True
        while progressed:
            progressed = False
            for component, action in self._system.enabled_steps():
                if component in (self._env, self._adv):
                    continue
                if action.name == "RETRY":
                    continue  # RETRY only on its cadence / adversary request
                self._perform(component, action)
                progressed = True
                break

    def _perform(self, component, action: Action) -> None:
        kind = component.classify(action)
        self._system.apply(component, action)
        self.execution.record(action, actor=component.name, kind=kind)
        self._record_trace(action)

    def _record_trace(self, action: Action) -> None:
        name = action.name
        if name == "send_msg":
            self.trace.append(SendMsg(message=action.params[0]))
        elif name == "OK":
            self.trace.append(Ok())
        elif name == "receive_msg":
            self.trace.append(ReceiveMsg(message=action.params[0]))
        elif name == "crash_T":
            self.trace.append(CrashT())
        elif name == "crash_R":
            self.trace.append(CrashR())
        elif name == "RETRY":
            self.trace.append(Retry())
        elif name.startswith("new_pkt:"):
            channel = ChannelId(name.split(":", 1)[1])
            packet_id, length = action.params
            self.trace.append(
                PktSent(channel=channel, packet_id=packet_id, length_bits=length)
            )
        elif name.startswith("deliver_pkt:"):
            channel = ChannelId(name.split(":", 1)[1])
            self.trace.append(
                PktDelivered(channel=channel, packet_id=action.params[0])
            )
