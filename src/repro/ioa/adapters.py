"""I/O-automaton adapters for the concrete protocol components.

These wrap the operational classes (:class:`~repro.core.Transmitter`,
:class:`~repro.core.Receiver`, :class:`~repro.channel.Channel`, any
:class:`~repro.adversary.Adversary`) in the formal interface of Section 2,
with the exact action names and signatures the paper lists.  The resulting
composition *is* ``D(A, ADV)`` as drawn in Figure 1; the integration tests
run it with :class:`~repro.ioa.scheduler.SystemScheduler` and check the
same correctness conditions the operational simulator satisfies —
cross-validating the two harnesses against each other.

Action naming convention (the paper's superscripts become suffixes):

* ``send_msg``, ``OK``, ``crash_T`` — TM interface;
* ``receive_msg``, ``crash_R``, ``RETRY`` — RM interface;
* ``send_pkt:T->R``, ``receive_pkt:T->R``, ``new_pkt:T->R``,
  ``deliver_pkt:T->R`` — the forward channel (same for ``R->T``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.adversary.base import (
    Adversary,
    CrashReceiver,
    CrashTransmitter,
    Deliver,
    Move,
    Pass,
    TriggerRetry,
)
from repro.channel.channel import PacketInfo
from repro.core.events import ChannelId, EmitOk, EmitPacket, EmitReceiveMsg
from repro.core.packets import Packet
from repro.core.receiver import Receiver
from repro.core.transmitter import Transmitter
from repro.ioa.actions import Action, Signature
from repro.ioa.automaton import IOAutomaton

__all__ = [
    "TMAutomaton",
    "RMAutomaton",
    "ChannelAutomaton",
    "AdversaryAutomaton",
    "EnvironmentAutomaton",
]


class _OutboxAutomaton(IOAutomaton):
    """Shared machinery: inputs enqueue output actions; the scheduler
    flushes them as locally controlled steps (atomically, in order)."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._outbox: Deque[Action] = deque()

    def locally_controlled_steps(self) -> List[Action]:
        return [self._outbox[0]] if self._outbox else []

    def perform(self, action: Action) -> None:
        if not self._outbox or self._outbox[0] != action:
            raise ValueError(f"{self.name}: {action} is not the pending step")
        self._outbox.popleft()


class TMAutomaton(_OutboxAutomaton):
    """The TM of Section 2.1 wrapping an operational Transmitter."""

    signature = Signature.of(
        inputs=("send_msg", "receive_pkt:R->T", "crash_T"),
        outputs=("OK", "send_pkt:T->R"),
    )

    def __init__(self, transmitter: Transmitter, name: str = "TM") -> None:
        super().__init__(name)
        self._tm = transmitter

    def handle_input(self, action: Action) -> None:
        if action.name == "send_msg":
            outputs = self._tm.send_msg(action.params[0])
        elif action.name == "receive_pkt:R->T":
            outputs = self._tm.on_receive_pkt(action.params[0])
        elif action.name == "crash_T":
            self._tm.crash()
            self._outbox.clear()  # a crash erases pending behaviour too
            return
        else:
            raise KeyError(f"TM does not accept {action.name!r}")
        for output in outputs:
            if isinstance(output, EmitPacket):
                self._outbox.append(Action("send_pkt:T->R", (output.packet,)))
            elif isinstance(output, EmitOk):
                self._outbox.append(Action("OK"))


class RMAutomaton(_OutboxAutomaton):
    """The RM of Section 2.2 wrapping an operational Receiver.

    RETRY is the receiver's internal action; it is *always* enabled,
    matching the assumption that it occurs infinitely often in any fair
    schedule.
    """

    signature = Signature.of(
        inputs=("receive_pkt:T->R", "crash_R"),
        outputs=("receive_msg", "send_pkt:R->T"),
        internals=("RETRY",),
    )

    def __init__(self, receiver: Receiver, name: str = "RM") -> None:
        super().__init__(name)
        self._rm = receiver

    def handle_input(self, action: Action) -> None:
        if action.name == "receive_pkt:T->R":
            outputs = self._rm.on_receive_pkt(action.params[0])
        elif action.name == "crash_R":
            self._rm.crash()
            self._outbox.clear()
            return
        else:
            raise KeyError(f"RM does not accept {action.name!r}")
        self._enqueue(outputs)

    def locally_controlled_steps(self) -> List[Action]:
        steps = super().locally_controlled_steps()
        return steps + [Action("RETRY")]

    def perform(self, action: Action) -> None:
        if action.name == "RETRY":
            self._enqueue(self._rm.retry())
            return
        super().perform(action)

    def _enqueue(self, outputs) -> None:
        for output in outputs:
            if isinstance(output, EmitPacket):
                self._outbox.append(Action("send_pkt:R->T", (output.packet,)))
            elif isinstance(output, EmitReceiveMsg):
                self._outbox.append(Action("receive_msg", (output.message,)))


class ChannelAutomaton(_OutboxAutomaton):
    """The CC of Section 2.3: stores packets, announces new_pkt, replays
    deliver_pkt requests as receive_pkt outputs."""

    def __init__(self, channel_id: ChannelId, name: Optional[str] = None) -> None:
        direction = channel_id.value
        super().__init__(name or f"C[{direction}]")
        self.channel_id = channel_id
        self.signature = Signature.of(
            inputs=(f"send_pkt:{direction}", f"deliver_pkt:{direction}"),
            outputs=(f"receive_pkt:{direction}", f"new_pkt:{direction}"),
        )
        self._direction = direction
        self._store: Dict[int, Packet] = {}
        self._next_id = 0

    def handle_input(self, action: Action) -> None:
        if action.name == f"send_pkt:{self._direction}":
            packet = action.params[0]
            packet_id = self._next_id
            self._next_id += 1
            self._store[packet_id] = packet
            self._outbox.append(
                Action(
                    f"new_pkt:{self._direction}",
                    (packet_id, packet.wire_length_bits),
                )
            )
        elif action.name == f"deliver_pkt:{self._direction}":
            packet_id = action.params[0]
            packet = self._store[packet_id]  # KeyError = causality bug
            self._outbox.append(
                Action(f"receive_pkt:{self._direction}", (packet,))
            )
        else:
            raise KeyError(f"{self.name} does not accept {action.name!r}")


class AdversaryAutomaton(IOAutomaton):
    """The ADV of Section 2.4 wrapping an operational Adversary.

    The adversary's moves become its locally controlled output actions;
    the one-move-at-a-time protocol of the operational API is preserved by
    caching the pending move until the scheduler performs it.
    """

    signature = Signature.of(
        inputs=("new_pkt:T->R", "new_pkt:R->T"),
        outputs=(
            "deliver_pkt:T->R",
            "deliver_pkt:R->T",
            "crash_T",
            "crash_R",
        ),
        internals=("adv_pass", "adv_retry_request"),
    )

    def __init__(self, adversary: Adversary, name: str = "ADV") -> None:
        super().__init__(name)
        self._adv = adversary
        self._pending: Optional[Action] = None
        self.retry_requested = False

    def handle_input(self, action: Action) -> None:
        packet_id, length = action.params
        channel = (
            ChannelId.T_TO_R if action.name.endswith("T->R") else ChannelId.R_TO_T
        )
        self._adv.on_new_pkt(
            PacketInfo(channel=channel, packet_id=packet_id, length_bits=length)
        )

    def locally_controlled_steps(self) -> List[Action]:
        if self._pending is None:
            self._pending = self._move_to_action(self._adv.next_move())
        return [self._pending]

    def perform(self, action: Action) -> None:
        if action != self._pending:
            raise ValueError(f"{self.name}: {action} is not the pending move")
        if action.name == "adv_retry_request":
            self.retry_requested = True
        self._pending = None

    @staticmethod
    def _move_to_action(move: Move) -> Action:
        if isinstance(move, Deliver):
            return Action(f"deliver_pkt:{move.channel.value}", (move.packet_id,))
        if isinstance(move, CrashTransmitter):
            return Action("crash_T")
        if isinstance(move, CrashReceiver):
            return Action("crash_R")
        if isinstance(move, TriggerRetry):
            return Action("adv_retry_request")
        if isinstance(move, Pass):
            return Action("adv_pass")
        raise TypeError(f"unknown adversary move {move!r}")


class EnvironmentAutomaton(IOAutomaton):
    """The higher layer: submits the workload respecting Axiom 1."""

    signature = Signature.of(
        inputs=("OK", "crash_T", "receive_msg"),
        outputs=("send_msg",),
    )

    def __init__(self, payloads, name: str = "ENV") -> None:
        super().__init__(name)
        self._queue: Deque[bytes] = deque(payloads)
        self._in_flight = False
        self.delivered: List[bytes] = []
        self.oks = 0

    def handle_input(self, action: Action) -> None:
        if action.name == "OK":
            self._in_flight = False
            self.oks += 1
        elif action.name == "crash_T":
            self._in_flight = False
        elif action.name == "receive_msg":
            self.delivered.append(action.params[0])

    def locally_controlled_steps(self) -> List[Action]:
        if not self._in_flight and self._queue:
            return [Action("send_msg", (self._queue[0],))]
        return []

    def perform(self, action: Action) -> None:
        if action.name != "send_msg" or not self._queue:
            raise ValueError(f"{self.name}: cannot perform {action}")
        self._queue.popleft()
        self._in_flight = True

    @property
    def done(self) -> bool:
        """True when every payload has been submitted and acknowledged."""
        return not self._queue and not self._in_flight
