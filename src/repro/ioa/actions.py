"""Actions and action signatures of the I/O automata model [LT87, Lyn87].

Section 2 of the paper specifies every component (TM, RM, the two channels,
ADV) as an I/O automaton: a state machine whose interface is a *signature*
partitioning action names into input, output and internal classes.  This
module provides the vocabulary; :mod:`repro.ioa.automaton` the machines and
:mod:`repro.ioa.composition` the composition rules.

Actions are identified by name; parameters ride along as a tuple.  Two
automata interact when one's output name is another's input name —
composition synchronises them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple

__all__ = ["ActionKind", "Action", "Signature"]


class ActionKind(enum.Enum):
    """The three action classes of the I/O automata model."""

    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"


@dataclass(frozen=True)
class Action:
    """One occurrence of an action: a name plus concrete parameters.

    ``Action("send_msg", (b"hello",))`` is the paper's ``send_msg(m)``.
    """

    name: str
    params: Tuple = ()

    def __str__(self) -> str:
        if not self.params:
            return self.name
        rendered = ", ".join(repr(p) for p in self.params)
        return f"{self.name}({rendered})"


@dataclass(frozen=True)
class Signature:
    """An automaton's interface: disjoint input/output/internal name sets.

    Input actions are controlled by the environment and must be enabled in
    every state (input-enabledness, the model's defining property); output
    and internal actions are controlled by the automaton.
    """

    inputs: FrozenSet[str] = field(default_factory=frozenset)
    outputs: FrozenSet[str] = field(default_factory=frozenset)
    internals: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        overlap = (
            (self.inputs & self.outputs)
            | (self.inputs & self.internals)
            | (self.outputs & self.internals)
        )
        if overlap:
            raise ValueError(
                f"action classes must be disjoint; shared names: {sorted(overlap)}"
            )

    @classmethod
    def of(
        cls,
        inputs: Iterable[str] = (),
        outputs: Iterable[str] = (),
        internals: Iterable[str] = (),
    ) -> "Signature":
        """Convenience constructor from any iterables."""
        return cls(
            inputs=frozenset(inputs),
            outputs=frozenset(outputs),
            internals=frozenset(internals),
        )

    @property
    def external(self) -> FrozenSet[str]:
        """Externally visible actions: inputs and outputs."""
        return self.inputs | self.outputs

    @property
    def all_actions(self) -> FrozenSet[str]:
        """Every action name in the signature."""
        return self.inputs | self.outputs | self.internals

    def kind_of(self, name: str) -> ActionKind:
        """Classify an action name; raises KeyError for foreign names."""
        if name in self.inputs:
            return ActionKind.INPUT
        if name in self.outputs:
            return ActionKind.OUTPUT
        if name in self.internals:
            return ActionKind.INTERNAL
        raise KeyError(f"action {name!r} not in signature")

    def compatible_with(self, other: "Signature") -> bool:
        """Composition compatibility per [LT87].

        Output action sets must be disjoint (at most one controller per
        action) and internal actions must be private to their automaton.
        """
        if self.outputs & other.outputs:
            return False
        if self.internals & other.all_actions:
            return False
        if other.internals & self.all_actions:
            return False
        return True
