"""Executions of I/O automata systems.

An *execution* in the model is an alternating sequence of states and
actions; since states are opaque here, we record the action sequence (the
*schedule*) plus which component controlled each action.  The external
subsequence (inputs/outputs only) is the *behavior*, which is what the
paper's correctness conditions constrain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.ioa.actions import Action, ActionKind

__all__ = ["ExecutionStep", "Execution"]


@dataclass(frozen=True)
class ExecutionStep:
    """One action occurrence: who controlled it and what kind it was.

    ``actor`` is None for environment inputs injected from outside the
    composition.
    """

    action: Action
    actor: Optional[str]
    kind: ActionKind


class Execution:
    """An append-only record of a composition's run."""

    def __init__(self) -> None:
        self._steps: List[ExecutionStep] = []

    def record(self, action: Action, actor: Optional[str], kind: ActionKind) -> None:
        """Append one step."""
        self._steps.append(ExecutionStep(action=action, actor=actor, kind=kind))

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self) -> Iterator[ExecutionStep]:
        return iter(self._steps)

    def __getitem__(self, index: int) -> ExecutionStep:
        return self._steps[index]

    def schedule(self) -> List[Action]:
        """The full action sequence."""
        return [step.action for step in self._steps]

    def behavior(self) -> List[Action]:
        """The externally visible subsequence (no internal actions)."""
        return [
            step.action
            for step in self._steps
            if step.kind in (ActionKind.INPUT, ActionKind.OUTPUT)
        ]

    def actions_named(self, name: str) -> List[Action]:
        """All occurrences of one action name, in order."""
        return [step.action for step in self._steps if step.action.name == name]

    def __repr__(self) -> str:
        return f"Execution(steps={len(self._steps)})"
