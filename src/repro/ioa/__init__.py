"""I/O automata substrate: the formal model of Section 2 ([LT87, Lyn87])."""

from repro.ioa.actions import Action, ActionKind, Signature
from repro.ioa.adapters import (
    AdversaryAutomaton,
    ChannelAutomaton,
    EnvironmentAutomaton,
    RMAutomaton,
    TMAutomaton,
)
from repro.ioa.automaton import IOAutomaton
from repro.ioa.composition import Composition, CompositionError
from repro.ioa.execution import Execution, ExecutionStep
from repro.ioa.scheduler import SystemScheduler, build_system

__all__ = [
    "Action",
    "ActionKind",
    "AdversaryAutomaton",
    "ChannelAutomaton",
    "Composition",
    "CompositionError",
    "EnvironmentAutomaton",
    "Execution",
    "ExecutionStep",
    "IOAutomaton",
    "RMAutomaton",
    "Signature",
    "SystemScheduler",
    "TMAutomaton",
    "build_system",
]
