"""Stop-and-wait with bounded modular sequence numbers.

A deterministic generalisation of ABP: frames carry a ``k``-bit sequence
number incremented per message (mod 2^k).  Larger ``k`` buys tolerance to
deeper reordering/duplication than ABP's single bit, but the protocol is
still deterministic, so by [LMF88] it cannot survive crashes — after a
crash both counters restart at zero and history repeats.  The comparison
experiments use it as the "best deterministic effort" rung between ABP and
the paper's randomized protocol.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.base import AckFrame, BaselineLink, BaselineStats, Frame
from repro.core.events import EmitOk, EmitPacket, EmitReceiveMsg, StationOutput
from repro.core.exceptions import ProtocolError

__all__ = ["StopAndWaitTransmitter", "StopAndWaitReceiver", "make_stop_and_wait_link"]


class StopAndWaitTransmitter:
    """Sender with a mod-2^k per-message sequence counter."""

    def __init__(self, seq_bits: int = 16) -> None:
        if seq_bits < 1:
            raise ValueError("seq_bits must be >= 1")
        self._modulus = 1 << seq_bits
        self._seq_bits = seq_bits
        self.stats = BaselineStats()
        self._reset()

    @property
    def busy(self) -> bool:
        return self._message is not None

    @property
    def storage_bits(self) -> int:
        return self._seq_bits

    def crash(self) -> None:
        self._reset()
        self.stats.crashes += 1

    def send_msg(self, message: bytes) -> List[StationOutput]:
        if self.busy:
            raise ProtocolError("send_msg while busy violates Axiom 1")
        self._message = message
        self._seq = (self._seq + 1) % self._modulus
        self.stats.packets_sent += 1
        return [EmitPacket(Frame(seq=self._seq, message=message))]

    def on_receive_pkt(self, packet: AckFrame) -> List[StationOutput]:
        if not isinstance(packet, AckFrame):
            raise ProtocolError(
                f"stop-and-wait transmitter got {type(packet).__name__}"
            )
        if not self.busy:
            return []
        if packet.seq == self._seq:
            self._message = None
            return [EmitOk()]
        assert self._message is not None
        self.stats.packets_sent += 1
        return [EmitPacket(Frame(seq=self._seq, message=self._message))]

    def _reset(self) -> None:
        self._seq = 0
        self._message: Optional[bytes] = None

    def __repr__(self) -> str:
        return f"StopAndWaitTransmitter(seq={self._seq}, busy={self.busy})"


class StopAndWaitReceiver:
    """Receiver accepting exactly the next expected sequence number.

    Frames other than ``last_accepted + 1 (mod 2^k)`` — duplicates of the
    current or of older messages — are rejected and re-acked with the last
    accepted number, which drives the transmitter's retransmission.  A
    ``2^k``-deep duplicate (full wraparound) or any post-crash replay still
    fools it: determinism, not counter width, is the root limitation.
    """

    def __init__(self, seq_bits: int = 16) -> None:
        if seq_bits < 1:
            raise ValueError("seq_bits must be >= 1")
        self._seq_bits = seq_bits
        self._modulus = 1 << seq_bits
        self.stats = BaselineStats()
        self._reset()

    @property
    def storage_bits(self) -> int:
        return self._seq_bits

    def crash(self) -> None:
        self._reset()
        self.stats.crashes += 1

    def retry(self) -> List[StationOutput]:
        self.stats.packets_sent += 1
        return [EmitPacket(AckFrame(seq=self._last_accepted))]

    def on_receive_pkt(self, packet: Frame) -> List[StationOutput]:
        if not isinstance(packet, Frame):
            raise ProtocolError(f"stop-and-wait receiver got {type(packet).__name__}")
        if packet.seq == (self._last_accepted + 1) % self._modulus:
            self._last_accepted = packet.seq
            self.stats.packets_sent += 1
            return [
                EmitReceiveMsg(packet.message),
                EmitPacket(AckFrame(seq=self._last_accepted)),
            ]
        # Duplicates are not acked per-packet (the periodic RETRY re-ack
        # covers them) — per-duplicate acks self-flood the channel.
        return []

    def _reset(self) -> None:
        self._last_accepted = 0

    def __repr__(self) -> str:
        return f"StopAndWaitReceiver(last={self._last_accepted})"


def make_stop_and_wait_link(seq_bits: int = 16) -> BaselineLink:
    """Build a stop-and-wait pair with ``seq_bits``-bit counters."""
    return BaselineLink(
        transmitter=StopAndWaitTransmitter(seq_bits=seq_bits),
        receiver=StopAndWaitReceiver(seq_bits=seq_bits),
        name=f"stop-and-wait-{seq_bits}b",
    )
