"""Baseline protocols the paper positions itself against (Section 1)."""

from repro.baselines.alternating_bit import AbpReceiver, AbpTransmitter, make_abp_link
from repro.baselines.base import AckFrame, BaselineLink, BaselineStats, Frame
from repro.baselines.naive_handshake import make_naive_handshake_link
from repro.baselines.nonvolatile_bit import (
    NonvolatileBitReceiver,
    NonvolatileBitTransmitter,
    make_nonvolatile_bit_link,
)
from repro.baselines.stop_and_wait import (
    StopAndWaitReceiver,
    StopAndWaitTransmitter,
    make_stop_and_wait_link,
)

__all__ = [
    "AbpReceiver",
    "AbpTransmitter",
    "AckFrame",
    "BaselineLink",
    "BaselineStats",
    "Frame",
    "NonvolatileBitReceiver",
    "NonvolatileBitTransmitter",
    "StopAndWaitReceiver",
    "StopAndWaitTransmitter",
    "make_abp_link",
    "make_naive_handshake_link",
    "make_nonvolatile_bit_link",
    "make_stop_and_wait_link",
]
