"""The Section 3 "first modification" protocol: fixed random nonces.

This is the strawman the paper builds its attack narrative around — the
three-packet handshake with retransmission, but with a *single, fixed-size*
random string per message and no adaptive extension.  It is exactly the
real protocol run with :class:`~repro.core.params.FixedPolicy`, which this
module packages under its own name so experiments and examples can refer
to it as a protocol in its own right.

Against benign faults it behaves like the real protocol.  Against the
Section 3 replay attack (:class:`~repro.adversary.ReplayAttacker`) its
no-replay violation probability grows with the attacker's archive toward
certainty, because the archive eventually contains every value its short
challenge can take.  Experiment E2 measures the contrast.
"""

from __future__ import annotations

from typing import Optional

from repro.core.params import FixedPolicy
from repro.core.protocol import DataLink, make_data_link

__all__ = ["make_naive_handshake_link"]


def make_naive_handshake_link(
    nonce_bits: int = 8, seed: Optional[int] = None
) -> DataLink:
    """Build the fixed-nonce handshake pair of Section 3's overview.

    Parameters
    ----------
    nonce_bits:
        The fixed challenge length.  The paper's attack succeeds once the
        adversary has archived on the order of ``2^nonce_bits`` distinct
        historical packets, so small values make the vulnerability visible
        in small simulations.
    seed:
        Root seed for the stations' tapes.
    """
    return make_data_link(
        epsilon=2.0 ** -nonce_bits,
        seed=seed,
        policy=FixedPolicy(nonce_bits=nonce_bits),
        require_sound_policy=False,
    )
