"""Common scaffolding for baseline protocols.

The baselines implement the same station interface as the paper's protocol
(``send_msg`` / ``on_receive_pkt`` / ``crash`` / ``busy`` on the
transmitter side; ``retry`` / ``on_receive_pkt`` / ``crash`` on the
receiver side), so the one simulator harness runs them all and the one
checker suite judges them all.  That is the point of the comparison
experiments: identical adversaries, identical conditions, different
protocols.

Baseline frames carry explicit sequence numbers instead of random nonces;
their wire sizes are computed the same way as the core packets' so the
communication-cost comparison is apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Frame", "AckFrame", "BaselineStats", "BaselineLink"]


@dataclass(frozen=True)
class Frame:
    """A baseline data frame: sequence number plus payload."""

    seq: int
    message: bytes

    @property
    def wire_length_bits(self) -> int:
        """1 kind byte + 8 seq bytes + 4 length bytes + payload."""
        return (1 + 8 + 4 + len(self.message)) * 8


@dataclass(frozen=True)
class AckFrame:
    """A baseline acknowledgement frame."""

    seq: int

    @property
    def wire_length_bits(self) -> int:
        """1 kind byte + 8 seq bytes."""
        return (1 + 8) * 8


@dataclass
class BaselineStats:
    """Duck-typed stand-in for the core stations' stats objects.

    The metrics collector reads ``extensions`` and ``errors_counted``;
    baselines have no nonce machinery so both stay zero, but the fields
    must exist for the shared pipeline.
    """

    packets_sent: int = 0
    extensions: int = 0
    errors_counted: int = 0
    crashes: int = 0


@dataclass
class BaselineLink:
    """Duck-typed stand-in for :class:`~repro.core.protocol.DataLink`.

    Carries whatever transmitter/receiver pair a baseline builds, exposing
    the two attributes the simulator and metrics pipeline touch.
    """

    transmitter: object
    receiver: object
    name: str = "baseline"

    def total_storage_bits(self) -> int:
        """Baselines store O(1) sequence state; report it for comparability."""
        total = 0
        for station in (self.transmitter, self.receiver):
            total += getattr(station, "storage_bits", 0)
        return total
