"""ABP with one nonvolatile bit per station — the [BS88] remedy.

The paper cites [BS88]: classical FIFO protocols are not crash-resilient,
but a single *nonvolatile* bit (memory that survives crashes) restores
correctness over FIFO channels.  This baseline is ABP where the
alternating/expected bit lives in simulated nonvolatile storage: ``crash``
erases everything *except* that bit.

It brackets the design space the paper operates in: stable storage buys
back *receiver*-crash resilience deterministically (receiver crashes stop
producing duplications/replays — the failure [BS88] highlight in classical
ABP), whereas the paper achieves full crash resilience probabilistically
*without* any stable storage.  Transmitter crashes can still yield an OK
for a message a one-bit deterministic ack cannot distinguish from its
predecessor (the E6 experiments measure exactly this residual order
violation), and over non-FIFO or duplicating channels the baseline fails
like any ABP variant.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.base import AckFrame, BaselineLink, BaselineStats, Frame
from repro.core.events import EmitOk, EmitPacket, EmitReceiveMsg, StationOutput
from repro.core.exceptions import ProtocolError

__all__ = [
    "NonvolatileBitTransmitter",
    "NonvolatileBitReceiver",
    "make_nonvolatile_bit_link",
]


class NonvolatileBitTransmitter:
    """ABP sender whose alternating bit survives crashes."""

    def __init__(self) -> None:
        self.stats = BaselineStats()
        self._nonvolatile_bit = 0
        self._message: Optional[bytes] = None

    @property
    def busy(self) -> bool:
        return self._message is not None

    @property
    def storage_bits(self) -> int:
        return 1

    @property
    def nonvolatile_bit(self) -> int:
        """The stable-storage bit (exposed for tests)."""
        return self._nonvolatile_bit

    def crash(self) -> None:
        """Volatile state (the in-flight message) is lost; the bit is not."""
        self._message = None
        self.stats.crashes += 1

    def send_msg(self, message: bytes) -> List[StationOutput]:
        if self.busy:
            raise ProtocolError("send_msg while busy violates Axiom 1")
        self._message = message
        self.stats.packets_sent += 1
        return [EmitPacket(Frame(seq=self._nonvolatile_bit, message=message))]

    def on_receive_pkt(self, packet: AckFrame) -> List[StationOutput]:
        if not isinstance(packet, AckFrame):
            raise ProtocolError(
                f"nonvolatile-bit transmitter got {type(packet).__name__}"
            )
        if not self.busy:
            return []
        if packet.seq == self._nonvolatile_bit:
            self._message = None
            self._nonvolatile_bit ^= 1  # committed to stable storage
            return [EmitOk()]
        assert self._message is not None
        self.stats.packets_sent += 1
        return [EmitPacket(Frame(seq=self._nonvolatile_bit, message=self._message))]

    def __repr__(self) -> str:
        return (
            f"NonvolatileBitTransmitter(bit={self._nonvolatile_bit}, "
            f"busy={self.busy})"
        )


class NonvolatileBitReceiver:
    """ABP receiver whose expected bit survives crashes."""

    def __init__(self) -> None:
        self.stats = BaselineStats()
        self._nonvolatile_expected = 0
        self._nonvolatile_has_accepted = False

    @property
    def storage_bits(self) -> int:
        return 2  # the expected bit + the has-accepted flag, both stable

    @property
    def nonvolatile_bit(self) -> int:
        """The stable-storage bit (exposed for tests)."""
        return self._nonvolatile_expected

    def crash(self) -> None:
        """Nothing volatile to lose; both stable values persist."""
        self.stats.crashes += 1

    def retry(self) -> List[StationOutput]:
        self.stats.packets_sent += 1
        # Before the first-ever acceptance, ack a sentinel: it clocks
        # retransmission but can never alias with a data bit.  (The flag is
        # stable storage, so post-crash re-acks stay valid.)
        seq = (
            (self._nonvolatile_expected ^ 1)
            if self._nonvolatile_has_accepted
            else -1
        )
        return [EmitPacket(AckFrame(seq=seq))]

    def on_receive_pkt(self, packet: Frame) -> List[StationOutput]:
        if not isinstance(packet, Frame):
            raise ProtocolError(
                f"nonvolatile-bit receiver got {type(packet).__name__}"
            )
        if packet.seq == self._nonvolatile_expected:
            self._nonvolatile_expected ^= 1  # committed to stable storage
            self._nonvolatile_has_accepted = True
            self.stats.packets_sent += 1
            return [
                EmitReceiveMsg(packet.message),
                EmitPacket(AckFrame(seq=packet.seq)),
            ]
        # Duplicates are re-acked by the periodic RETRY, not per packet
        # (per-duplicate acks self-flood the channel).
        return []

    def __repr__(self) -> str:
        return f"NonvolatileBitReceiver(expected={self._nonvolatile_expected})"


def make_nonvolatile_bit_link() -> BaselineLink:
    """Build the [BS88]-style nonvolatile-bit ABP pair."""
    return BaselineLink(
        transmitter=NonvolatileBitTransmitter(),
        receiver=NonvolatileBitReceiver(),
        name="nonvolatile-bit",
    )
