"""The alternating-bit protocol (ABP) — the classical FIFO data link.

ABP is the canonical deterministic protocol the paper's "Other Solutions"
section alludes to ("For FIFO channels, many protocols are known
[Zim80, Tan81]").  It is correct over FIFO channels without duplication and
without crashes; the comparison experiments show both faces:

* under :class:`~repro.adversary.ReliableAdversary` and loss-only
  adversaries it matches the paper's protocol at two frames per message;
* under duplication/reordering, and especially under crashes, it violates
  the Section 2.6 conditions — empirically illustrating [BS88]'s
  observation and the [LMF88] impossibility that motivate the paper.

To fit the receiver-paced harness, retransmissions are ack-driven: the
receiver's RETRY resends its last acknowledgement, and a transmitter
holding an unacknowledged frame retransmits on any ack that does not match
the frame's bit.  This is a standard ABP variant (NAK-free, ack-clocked)
and keeps the packet economy identical to the textbook version.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.base import AckFrame, BaselineLink, BaselineStats, Frame
from repro.core.events import EmitOk, EmitPacket, EmitReceiveMsg, StationOutput
from repro.core.exceptions import ProtocolError

__all__ = ["AbpTransmitter", "AbpReceiver", "make_abp_link"]


class AbpTransmitter:
    """ABP sender: one-bit sequence, retransmit until the bit is acked."""

    def __init__(self) -> None:
        self.stats = BaselineStats()
        self._reset()

    @property
    def busy(self) -> bool:
        return self._message is not None

    @property
    def storage_bits(self) -> int:
        return 1  # the alternating bit

    def crash(self) -> None:
        """Crash erases everything — including the bit (volatile memory)."""
        self._reset()
        self.stats.crashes += 1

    def send_msg(self, message: bytes) -> List[StationOutput]:
        if self.busy:
            raise ProtocolError("send_msg while busy violates Axiom 1")
        self._message = message
        frame = Frame(seq=self._bit, message=message)
        self.stats.packets_sent += 1
        return [EmitPacket(frame)]

    def on_receive_pkt(self, packet: AckFrame) -> List[StationOutput]:
        if not isinstance(packet, AckFrame):
            raise ProtocolError(f"ABP transmitter got {type(packet).__name__}")
        if not self.busy:
            return []
        if packet.seq == self._bit:
            # Current frame acknowledged: flip the bit, notify the layer.
            self._message = None
            self._bit ^= 1
            return [EmitOk()]
        # Stale ack: the receiver has not seen the current frame yet.
        assert self._message is not None
        frame = Frame(seq=self._bit, message=self._message)
        self.stats.packets_sent += 1
        return [EmitPacket(frame)]

    def _reset(self) -> None:
        self._bit = 0
        self._message: Optional[bytes] = None

    def __repr__(self) -> str:
        return f"AbpTransmitter(bit={self._bit}, busy={self.busy})"


class AbpReceiver:
    """ABP receiver: accept frames whose bit matches the expectation."""

    def __init__(self) -> None:
        self.stats = BaselineStats()
        self._reset()

    @property
    def storage_bits(self) -> int:
        return 1

    def crash(self) -> None:
        """Crash erases the expected bit — the root of ABP's crash fragility."""
        self._reset()
        self.stats.crashes += 1

    def retry(self) -> List[StationOutput]:
        """Resend the last acknowledgement (ack-clocked retransmission).

        Before anything has been accepted there is nothing to acknowledge;
        a sentinel seq of -1 still clocks the transmitter's retransmission
        (it never equals an alternating bit, so it can never produce a
        spurious OK — acking ``expected ^ 1`` at boot would alias with a
        later message's bit).
        """
        self.stats.packets_sent += 1
        seq = (self._expected ^ 1) if self._has_accepted else -1
        return [EmitPacket(AckFrame(seq=seq))]

    def on_receive_pkt(self, packet: Frame) -> List[StationOutput]:
        if not isinstance(packet, Frame):
            raise ProtocolError(f"ABP receiver got {type(packet).__name__}")
        if packet.seq == self._expected:
            self._expected ^= 1
            self._has_accepted = True
            self.stats.packets_sent += 1
            return [
                EmitReceiveMsg(packet.message),
                EmitPacket(AckFrame(seq=packet.seq)),
            ]
        # Duplicate frame: do NOT ack immediately — the periodic RETRY
        # re-ack covers it.  Per-duplicate acks feed a retransmission loop
        # (every stale ack spawns a frame, every stale frame an ack) that
        # floods any finite-rate channel.
        return []

    def _reset(self) -> None:
        self._expected = 0
        self._has_accepted = False

    def __repr__(self) -> str:
        return f"AbpReceiver(expected={self._expected})"


def make_abp_link() -> BaselineLink:
    """Build an alternating-bit protocol pair."""
    return BaselineLink(
        transmitter=AbpTransmitter(), receiver=AbpReceiver(), name="alternating-bit"
    )
