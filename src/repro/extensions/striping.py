"""Striping: throughput beyond Axiom 1's one-message window.

Axiom 1 makes the data link stop-and-wait at the message level: the higher
layer may not submit message k+1 until message k is OK'd, so throughput is
one message per round trip however fast the channel is.  The classical
remedy is to run **K independent instances** of the link and stripe the
message stream across them round-robin, resequencing at the far end.  Each
instance individually satisfies the paper's conditions (nothing about the
protocol changes); the stripe header restores global order.

:class:`StripedLink` owns the K instances plus the resequencer;
:class:`StripedSimulator` steps the K per-lane simulators round-robin so
their executions interleave, as K links sharing real time would.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.adversary.base import Adversary
from repro.checkers.safety import SafetyReport, check_all_safety
from repro.core.events import ReceiveMsg
from repro.core.protocol import DataLink, make_data_link
from repro.core.random_source import split_seed
from repro.sim.simulator import Simulator
from repro.sim.workload import ExplicitWorkload

__all__ = ["StripedLink", "StripedSimulator", "StripedResult"]

_HEADER = struct.Struct(">Q")


def _wrap(sequence: int, payload: bytes) -> bytes:
    return _HEADER.pack(sequence) + payload


def _unwrap(framed: bytes) -> "tuple[int, bytes]":
    (sequence,) = _HEADER.unpack_from(framed, 0)
    return sequence, framed[_HEADER.size :]


class StripedLink:
    """K independent data links plus a sequence-number resequencer."""

    def __init__(
        self,
        lanes: int,
        epsilon: float = 2.0 ** -16,
        seed: Optional[int] = None,
    ) -> None:
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        self.lanes = lanes
        self.links: List[DataLink] = [
            make_data_link(epsilon=epsilon, seed=split_seed(seed or 0, "lane", i))
            for i in range(lanes)
        ]
        self._next_expected = 0
        self._out_of_order: Dict[int, bytes] = {}
        self.delivered_in_order: List[bytes] = []

    def lane_of(self, sequence: int) -> int:
        """Which lane carries the message with this sequence number."""
        return sequence % self.lanes

    def stripe(self, payloads: Sequence[bytes]) -> List[List[bytes]]:
        """Split a message stream into per-lane framed workloads."""
        per_lane: List[List[bytes]] = [[] for __ in range(self.lanes)]
        for sequence, payload in enumerate(payloads):
            per_lane[self.lane_of(sequence)].append(_wrap(sequence, payload))
        return per_lane

    def accept(self, framed: bytes) -> None:
        """Feed one lane delivery into the resequencer."""
        sequence, payload = _unwrap(framed)
        self._out_of_order[sequence] = payload
        while self._next_expected in self._out_of_order:
            self.delivered_in_order.append(
                self._out_of_order.pop(self._next_expected)
            )
            self._next_expected += 1

    @property
    def reorder_buffer_size(self) -> int:
        """Messages held back waiting for an earlier sequence number."""
        return len(self._out_of_order)


@dataclass
class StripedResult:
    """Outcome of a striped run.

    ``rounds`` is the wall-clock measure: one round steps every still-busy
    lane once, the way K physical links share real time.  Striping trades
    total work (``steps``, roughly constant) for wall-clock (``rounds``,
    which drops toward 1/K of the single-lane figure when the channel is
    latency-bound).
    """

    delivered: List[bytes]
    steps: int
    rounds: int
    completed: bool
    lane_safety: List[SafetyReport]
    max_reorder_buffer: int

    @property
    def all_safe(self) -> bool:
        return all(report.passed for report in self.lane_safety)

    @property
    def messages_per_round(self) -> float:
        """Wall-clock throughput."""
        return len(self.delivered) / self.rounds if self.rounds else 0.0


class StripedSimulator:
    """Steps K per-lane simulators round-robin until all lanes finish.

    Parameters
    ----------
    striped:
        The :class:`StripedLink` to drive.
    payloads:
        The global, ordered message stream.
    adversary_factory:
        Builds one independent adversary per lane (each lane is its own
        channel pair with its own faults).
    """

    def __init__(
        self,
        striped: StripedLink,
        payloads: Sequence[bytes],
        adversary_factory: Callable[[], Adversary],
        seed: int = 0,
        max_steps_per_lane: int = 100_000,
        retry_every: int = 4,
    ) -> None:
        self.striped = striped
        self._payloads = list(payloads)
        workloads = striped.stripe(self._payloads)
        self._simulators: List[Simulator] = [
            Simulator(
                link=striped.links[lane],
                adversary=adversary_factory(),
                workload=ExplicitWorkload(workloads[lane]),
                seed=split_seed(seed, "lane-adv", lane),
                max_steps=max_steps_per_lane,
                retry_every=retry_every,
            )
            for lane in range(striped.lanes)
        ]
        self._consumed: List[int] = [0] * striped.lanes
        self._max_reorder = 0

    def run(self) -> StripedResult:
        """Interleave lane steps until every lane completes or stalls."""
        total_steps = 0
        rounds = 0
        progress = True
        while progress:
            progress = False
            rounds += 1
            for lane, simulator in enumerate(self._simulators):
                if simulator.finished or simulator.steps_taken >= simulator.max_steps:
                    continue
                simulator.step()
                total_steps += 1
                progress = True
                self._drain_lane(lane, simulator)
        completed = all(sim.finished for sim in self._simulators)
        safety = [check_all_safety(sim.trace) for sim in self._simulators]
        return StripedResult(
            delivered=list(self.striped.delivered_in_order),
            steps=total_steps,
            rounds=rounds,
            completed=completed,
            lane_safety=safety,
            max_reorder_buffer=self._max_reorder,
        )

    def _drain_lane(self, lane: int, simulator: Simulator) -> None:
        deliveries = simulator.trace.of_type(ReceiveMsg)
        while self._consumed[lane] < len(deliveries):
            framed = deliveries[self._consumed[lane]].message
            self._consumed[lane] += 1
            self.striped.accept(framed)
            self._max_reorder = max(
                self._max_reorder, self.striped.reorder_buffer_size
            )
