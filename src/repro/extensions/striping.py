"""Striping: throughput beyond Axiom 1's one-message window.

Axiom 1 makes the data link stop-and-wait at the message level: the higher
layer may not submit message k+1 until message k is OK'd, so throughput is
one message per round trip however fast the channel is.  The classical
remedy is to run **K independent instances** of the link and stripe the
message stream across them round-robin, resequencing at the far end.  Each
instance individually satisfies the paper's conditions (nothing about the
protocol changes); the stripe header restores global order.

:class:`StripedLink` owns the K instances plus the resequencer;
:class:`StripedSimulator` steps the K per-lane simulators round-robin so
their executions interleave, as K links sharing real time would.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.adversary.base import Adversary
from repro.checkers.safety import SafetyReport, check_all_safety
from repro.core.events import ReceiveMsg
from repro.core.protocol import DataLink, make_data_link
from repro.core.random_source import split_seed
from repro.sim.simulator import Simulator
from repro.sim.workload import ExplicitWorkload

__all__ = ["Resequencer", "StripedLink", "StripedSimulator", "StripedResult"]

_HEADER = struct.Struct(">Q")


def _wrap(sequence: int, payload: bytes) -> bytes:
    return _HEADER.pack(sequence) + payload


def _unwrap(framed: bytes) -> "tuple[int, bytes]":
    (sequence,) = _HEADER.unpack_from(framed, 0)
    return sequence, framed[_HEADER.size :]


class Resequencer:
    """Restores global order over messages delivered by independent lanes.

    Shared by the simulated :class:`StripedLink` and the live multi-lane
    endpoints (:mod:`repro.live.lanes`).  Lanes hand in ``(sequence,
    payload)`` pairs in whatever order their handshakes complete; the
    resequencer buffers gaps and releases the longest in-order run.
    Duplicate sequence numbers — possible on the live wire when a lane
    crash resubmits a slot whose first incarnation was already delivered —
    are counted and dropped, never re-released.
    """

    __slots__ = ("_next", "_pending", "delivered_in_order", "duplicates",
                 "high_water")

    def __init__(self) -> None:
        self._next = 0
        self._pending: Dict[int, bytes] = {}
        self.delivered_in_order: List[bytes] = []
        self.duplicates = 0
        #: Most messages ever buffered while waiting for an earlier one.
        self.high_water = 0

    @property
    def next_expected(self) -> int:
        return self._next

    @property
    def backlog(self) -> int:
        """Messages held back waiting for an earlier sequence number."""
        return len(self._pending)

    def accept(self, sequence: int, payload: bytes) -> List[bytes]:
        """Feed one lane delivery; returns the messages newly in order."""
        if sequence < self._next or sequence in self._pending:
            self.duplicates += 1
            return []
        self._pending[sequence] = payload
        released: List[bytes] = []
        while self._next in self._pending:
            released.append(self._pending.pop(self._next))
            self._next += 1
        self.delivered_in_order.extend(released)
        # Measured after the release sweep so it means the same thing as
        # ``backlog``: messages actually held back waiting for a gap (an
        # arrival that immediately releases is never "buffered").
        if len(self._pending) > self.high_water:
            self.high_water = len(self._pending)
        return released


class StripedLink:
    """K independent data links plus a sequence-number resequencer."""

    def __init__(
        self,
        lanes: int,
        epsilon: float = 2.0 ** -16,
        seed: Optional[int] = None,
    ) -> None:
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        self.lanes = lanes
        self.links: List[DataLink] = [
            make_data_link(epsilon=epsilon, seed=split_seed(seed or 0, "lane", i))
            for i in range(lanes)
        ]
        self.resequencer = Resequencer()

    @property
    def delivered_in_order(self) -> List[bytes]:
        return self.resequencer.delivered_in_order

    def lane_of(self, sequence: int) -> int:
        """Which lane carries the message with this sequence number."""
        return sequence % self.lanes

    def stripe(self, payloads: Sequence[bytes]) -> List[List[bytes]]:
        """Split a message stream into per-lane framed workloads."""
        per_lane: List[List[bytes]] = [[] for __ in range(self.lanes)]
        for sequence, payload in enumerate(payloads):
            per_lane[self.lane_of(sequence)].append(_wrap(sequence, payload))
        return per_lane

    def accept(self, framed: bytes) -> None:
        """Feed one lane delivery into the resequencer."""
        sequence, payload = _unwrap(framed)
        self.resequencer.accept(sequence, payload)

    @property
    def reorder_buffer_size(self) -> int:
        """Messages held back waiting for an earlier sequence number."""
        return self.resequencer.backlog


@dataclass
class StripedResult:
    """Outcome of a striped run.

    ``rounds`` is the wall-clock measure: one round steps every still-busy
    lane once, the way K physical links share real time.  Striping trades
    total work (``steps``, roughly constant) for wall-clock (``rounds``,
    which drops toward 1/K of the single-lane figure when the channel is
    latency-bound).
    """

    delivered: List[bytes]
    steps: int
    rounds: int
    completed: bool
    lane_safety: List[SafetyReport]
    max_reorder_buffer: int

    @property
    def all_safe(self) -> bool:
        return all(report.passed for report in self.lane_safety)

    @property
    def messages_per_round(self) -> float:
        """Wall-clock throughput."""
        return len(self.delivered) / self.rounds if self.rounds else 0.0


class StripedSimulator:
    """Steps K per-lane simulators round-robin until all lanes finish.

    Parameters
    ----------
    striped:
        The :class:`StripedLink` to drive.
    payloads:
        The global, ordered message stream.
    adversary_factory:
        Builds one independent adversary per lane (each lane is its own
        channel pair with its own faults).
    """

    def __init__(
        self,
        striped: StripedLink,
        payloads: Sequence[bytes],
        adversary_factory: Callable[[], Adversary],
        seed: int = 0,
        max_steps_per_lane: int = 100_000,
        retry_every: int = 4,
    ) -> None:
        self.striped = striped
        self._payloads = list(payloads)
        workloads = striped.stripe(self._payloads)
        self._simulators: List[Simulator] = [
            Simulator(
                link=striped.links[lane],
                adversary=adversary_factory(),
                workload=ExplicitWorkload(workloads[lane]),
                seed=split_seed(seed, "lane-adv", lane),
                max_steps=max_steps_per_lane,
                retry_every=retry_every,
            )
            for lane in range(striped.lanes)
        ]
        self._consumed: List[int] = [0] * striped.lanes
        self._max_reorder = 0

    def run(self) -> StripedResult:
        """Interleave lane steps until every lane completes or stalls."""
        total_steps = 0
        rounds = 0
        progress = True
        while progress:
            progress = False
            rounds += 1
            for lane, simulator in enumerate(self._simulators):
                if simulator.finished or simulator.steps_taken >= simulator.max_steps:
                    continue
                simulator.step()
                total_steps += 1
                progress = True
                self._drain_lane(lane, simulator)
        completed = all(sim.finished for sim in self._simulators)
        safety = [check_all_safety(sim.trace) for sim in self._simulators]
        return StripedResult(
            delivered=list(self.striped.delivered_in_order),
            steps=total_steps,
            rounds=rounds,
            completed=completed,
            lane_safety=safety,
            max_reorder_buffer=self._max_reorder,
        )

    def _drain_lane(self, lane: int, simulator: Simulator) -> None:
        deliveries = simulator.trace.of_type(ReceiveMsg)
        while self._consumed[lane] < len(deliveries):
            framed = deliveries[self._consumed[lane]].message
            self._consumed[lane] += 1
            self.striped.accept(framed)
            self._max_reorder = max(
                self._max_reorder, self.striped.reorder_buffer_size
            )
