"""Dropping the causality axiom: channels that deliver unsent packets.

Section 5 names this the main open problem: "extend the protocol to a
model in which ... the communication channel [may] deliver packets that
were not sent. ... In such a model, our protocol satisfies all the
correctness conditions except liveness."

This module makes that claim executable:

* :class:`InjectForgery` is a new adversary move: mint a packet that was
  never sent and deliver it.  Obliviousness is preserved — the adversary
  chooses only the *shape* (field lengths); the harness draws the contents
  from its own noise tape, modelling line noise that happens to pass the
  frame check.
* :class:`ForgingSimulator` extends the standard harness to honour the
  move (the base simulator rejects it, keeping the core model pure).
* :class:`RandomNoiseForger` sprinkles random forgeries over an otherwise
  benign schedule — safety should survive (experimentally it does; the
  nonce machinery treats forgeries as ordinary errors).
* :class:`ForgeryLivenessAttacker` is the liveness counterexample: every
  time the receiver polls, it floods forged data packets whose ρ-field
  length matches the receiver's current challenge length (inferred from
  the protocol's public size schedule).  Each batch burns the error budget
  and forces another extension, so the challenge never stabilises and the
  handshake never completes — even though genuine packets keep being
  delivered fairly.  This is precisely why Theorem 9 needs causality.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.adversary.base import (
    PASS,
    Adversary,
    Deliver,
    Move,
    make_deliver,
)
from repro.channel.channel import PacketInfo
from repro.core.events import ChannelId, Event
from repro.core.packets import DataPacket, PollPacket
from repro.core.params import ProtocolParams
from repro.core.random_source import RandomSource
from repro.sim.simulator import Simulator

__all__ = [
    "InjectForgery",
    "PktForged",
    "ForgingSimulator",
    "RandomNoiseForger",
    "ForgeryLivenessAttacker",
]


@dataclass(frozen=True)
class InjectForgery(Move):
    """Deliver a freshly minted, never-sent packet of a chosen shape.

    For the data direction (``T->R``) the forged packet is a
    :class:`DataPacket` with ``payload_bytes`` of noise payload and random
    ρ/τ fields of the given bit lengths; for ``R->T`` it is a
    :class:`PollPacket` (``payload_bytes`` ignored).  Contents come from
    the harness's noise tape, never from the adversary.
    """

    channel: ChannelId
    rho_bits: int
    tau_bits: int
    payload_bytes: int = 8
    max_retry: int = 16

    def __post_init__(self) -> None:
        if self.rho_bits < 0 or self.tau_bits < 0 or self.payload_bytes < 0:
            raise ValueError("forged field sizes must be non-negative")
        if self.max_retry < 0:
            raise ValueError("max_retry must be non-negative")


@dataclass(frozen=True)
class PktForged(Event):
    """Trace record of a forged delivery (no send_pkt ever preceded it)."""

    channel: ChannelId
    length_bits: int


class ForgingSimulator(Simulator):
    """A :class:`~repro.sim.Simulator` that honours :class:`InjectForgery`.

    Kept separate from the core harness so the base model's causality
    guarantee stays enforced by construction everywhere else.
    """

    def __init__(self, *args, noise_seed: int = 0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._noise = RandomSource(noise_seed).fork("forgery-noise")
        self.forged_deliveries = 0

    def _execute_move(self, move: Move) -> None:
        if isinstance(move, InjectForgery):
            self._inject(move)
            return
        super()._execute_move(move)

    def _inject(self, move: InjectForgery) -> None:
        if move.channel == ChannelId.T_TO_R:
            packet = DataPacket(
                message=bytes(
                    self._noise.randint(0, 255) for __ in range(move.payload_bytes)
                ),
                rho=self._noise.random_bits(move.rho_bits),
                tau=self._noise.random_bits(move.tau_bits),
            )
            target = self._link.receiver
            out_channel = self._r_to_t
        else:
            packet = PollPacket(
                rho=self._noise.random_bits(move.rho_bits),
                tau=self._noise.random_bits(move.tau_bits),
                retry=self._noise.randint(0, move.max_retry),
            )
            target = self._link.transmitter
            out_channel = self._t_to_r
        self.trace.append(
            PktForged(channel=move.channel, length_bits=packet.wire_length_bits)
        )
        self.forged_deliveries += 1
        outputs = target.on_receive_pkt(packet)
        if outputs:
            self._apply_outputs(outputs, out_channel)


class RandomNoiseForger(Adversary):
    """Benign FIFO delivery plus random forgeries at a configurable rate.

    The forged shapes mimic generation-1 packets.  Safety must survive:
    a forged ρ/τ matches a live nonce only with the 2^(−size) probability
    the analysis already budgets for.
    """

    def __init__(self, params: ProtocolParams, forge_rate: float = 0.2) -> None:
        super().__init__()
        if not 0.0 <= forge_rate < 1.0:
            raise ValueError("forge_rate must be in [0, 1)")
        self._params = params
        self._forge_rate = forge_rate
        self._pending: Deque[PacketInfo] = deque()
        self.forgeries = 0

    def on_new_pkt(self, info: PacketInfo) -> None:
        self._pending.append(info)

    def _decide(self) -> Move:
        if self.rng.bernoulli(self._forge_rate):
            self.forgeries += 1
            size1 = self._params.size(1)
            if self.rng.bernoulli(0.5):
                return InjectForgery(
                    channel=ChannelId.T_TO_R, rho_bits=size1, tau_bits=size1 + 1
                )
            return InjectForgery(
                channel=ChannelId.R_TO_T, rho_bits=size1, tau_bits=size1 + 1
            )
        if self._pending:
            info = self._pending.popleft()
            return make_deliver(info.channel, info.packet_id)
        return PASS

    def describe(self) -> str:
        return f"noise-forger(rate={self._forge_rate})"


class ForgeryLivenessAttacker(Adversary):
    """The Section 5 liveness counterexample — adaptive forgery pacing.

    The insight: the receiver accepts a data packet only if its echoed ρ
    equals the *entire current* challenge.  The challenge changes whenever
    ``bound(t)`` same-length mismatches arrive.  An adversary that may
    deliver unsent packets can therefore invalidate the challenge *before*
    every genuine data packet it is obliged to deliver:

    1. track the receiver's generation ``t`` via the public size schedule
       (the challenge length after ``t`` generations is
       ``cumulative_size(t)``, a known constant);
    2. forge ``bound(t)`` data packets of exactly that ρ length — the
       receiver's error budget fills and it extends to generation
       ``t + 1``, discarding the challenge every in-flight packet echoes;
    3. only then let the oldest genuine packet through (so the schedule
       remains fair: every packet is eventually delivered);
    4. repeat at generation ``t + 1``.

    The cost is exponential — generation ``t`` costs ``bound(t) = 2^t``
    forgeries — which is exactly why this breaks *liveness* (an unbounded-
    rate fair adversary sustains it forever) while any rate-limited
    adversary is eventually outpaced by the doubling bound.  Experiment
    E10 measures both regimes.

    Note that with forgery even *causality* becomes probabilistic (a
    forged ρ hits the live challenge with probability 2^(−size)), matching
    Section 5's caveat.
    """

    def __init__(self, params: ProtocolParams) -> None:
        super().__init__()
        self._params = params
        self._pending: Deque[PacketInfo] = deque()
        self._generation = 1
        self._forged_in_generation = 0
        self.forgeries = 0
        self.genuine_deliveries = 0

    def on_new_pkt(self, info: PacketInfo) -> None:
        self._pending.append(info)

    @property
    def generation(self) -> int:
        """The attacker's estimate of the receiver's generation t^R."""
        return self._generation

    def _current_rho_bits(self) -> int:
        return self._params.policy.cumulative_size(
            self._generation, self._params.epsilon
        )

    def _decide(self) -> Move:
        if self._forged_in_generation < self._params.bound(self._generation):
            self._forged_in_generation += 1
            self.forgeries += 1
            return InjectForgery(
                channel=ChannelId.T_TO_R,
                rho_bits=self._current_rho_bits(),
                tau_bits=self._params.size(1) + 1,
            )
        # Quota met: the receiver has extended past every ρ any in-flight
        # packet echoes.  Release one genuine packet (fairness), then chase
        # the next generation.
        self._generation += 1
        self._forged_in_generation = 0
        if self._pending:
            info = self._pending.popleft()
            self.genuine_deliveries += 1
            return make_deliver(info.channel, info.packet_id)
        return PASS

    def describe(self) -> str:
        return f"forgery-liveness-attack(gen={self._generation})"


class RetryFloodAttacker(Adversary):
    """A second, cheaper liveness attack unique to the forgery model.

    The transmitter answers only polls whose retry counter exceeds its
    watermark ``i^T`` (the Theorem 9 mechanism).  Under causality the
    counter is always genuine; with forgery, a *single* forged poll with a
    huge counter raises ``i^T`` so far that the receiver's honest polls —
    which increment by one per RETRY — are ignored for ``stall`` turns.

    Unlike the generation-chasing attack this stall is finite (``i^R`` is
    unbounded, so the receiver eventually catches up), but the adversary
    can re-forge whenever the watermark is about to be reached, for a
    denial of service at one forged packet per ``stall`` genuine turns —
    asymptotically free.  This is exactly why the paper's liveness proof
    leans on causality for the counter field too.
    """

    def __init__(self, stall: int = 10 ** 6, reforge_every: int = 5_000) -> None:
        super().__init__()
        if stall < 1 or reforge_every < 1:
            raise ValueError("stall and reforge_every must be >= 1")
        self._stall = stall
        self._reforge_every = reforge_every
        self._pending: Deque[PacketInfo] = deque()
        self.forged_polls = 0

    def on_new_pkt(self, info: PacketInfo) -> None:
        self._pending.append(info)

    def _decide(self) -> Move:
        if self.moves_made % self._reforge_every == 1:
            self.forged_polls += 1
            # Shape of a generation-1 poll; only the counter matters.
            return InjectForgery(
                channel=ChannelId.R_TO_T,
                rho_bits=1,
                tau_bits=1,
                max_retry=self._stall,
            )
        if self._pending:
            info = self._pending.popleft()
            return make_deliver(info.channel, info.packet_id)
        return PASS

    def describe(self) -> str:
        return f"retry-flood(stall={self._stall}, forged={self.forged_polls})"
