"""Dropping the obliviousness assumption: adversaries that read packets.

Section 5's second direction: "weaken the assumption that the adversary
does not depend on the contents of packets."  The model justifies
obliviousness either physically (non-malicious networks) or by encryption
(Section 2.5); this module studies the alternative directly.

:class:`ContentAwareReplayAttacker` upgrades the Section 3 attack from
probabilistic flooding to surgery: during harvest it indexes every data
packet *by its echoed challenge value* (reading contents via
:meth:`repro.channel.Channel.peek`, the explicit model-violation hook).
After crashing both stations it reads each receiver poll, looks the fresh
challenge up in its index, and — when present — delivers exactly the one
archived packet that matches.

Findings the tests pin down:

* against the fixed-nonce strawman the attack is devastating: once the
  archive covers the ``2^b`` challenge space, success is a lookup, not a
  lottery — no flooding, a handful of deliveries;
* against the real protocol the attack still fails *as long as causality
  holds*: the fresh challenge has ``size(1, ε) ≥ ⌈log2(1/ε)⌉ + 6`` bits,
  so the archive contains it with probability ≤ n·2^(−size(1)) ≤ ε·n/64 —
  content awareness buys the adversary knowledge of *whether* it can win,
  not the ability to win.  The protocol's security rests on challenge
  entropy, not on the adversary's blindness.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.adversary.base import (
    CRASH_RECEIVER,
    CRASH_TRANSMITTER,
    PASS,
    TRIGGER_RETRY,
    Adversary,
    Move,
    make_deliver,
)
from repro.channel.channel import ChannelPair, PacketInfo
from repro.core.bitstrings import BitString
from repro.core.events import ChannelId
from repro.core.packets import DataPacket, PollPacket

__all__ = ["ContentAwareReplayAttacker"]


class _Phase(enum.Enum):
    HARVEST = "harvest"
    CRASH_T = "crash-t"
    CRASH_R = "crash-r"
    SURGERY = "surgery"


class ContentAwareReplayAttacker(Adversary):
    """Content-reading crash-then-replay attacker (model violation).

    Must be attached to the simulation's channels via
    :meth:`attach_channels` before the run starts; the simulator exposes
    them as :attr:`~repro.sim.Simulator.channels`.

    Parameters
    ----------
    harvest_messages:
        Data packets to index before striking.
    strike_budget:
        Poll inspections allowed during surgery before giving up and
        behaving faithfully (keeps runs bounded).
    """

    def __init__(self, harvest_messages: int = 64, strike_budget: int = 400) -> None:
        super().__init__()
        if harvest_messages < 1:
            raise ValueError("harvest_messages must be >= 1")
        self._harvest_target = harvest_messages
        self._strike_budget = strike_budget
        self._channels: Optional[ChannelPair] = None
        self._pending: Deque[PacketInfo] = deque()
        self._index: Dict[BitString, PacketInfo] = {}
        self._frozen_index: Optional[Dict[BitString, PacketInfo]] = None
        self._data_packets_seen = 0
        self._phase = _Phase.HARVEST
        self._strikes = 0
        self.surgical_hits = 0
        self.strikes_at_first_hit: Optional[int] = None

    def attach_channels(self, channels: ChannelPair) -> None:
        """Grant content access (the explicit Section 2.5 violation)."""
        self._channels = channels

    @property
    def archive_size(self) -> int:
        """Distinct challenge values indexed so far."""
        return len(self._index)

    def on_new_pkt(self, info: PacketInfo) -> None:
        self._pending.append(info)
        if info.channel != ChannelId.T_TO_R or self._channels is None:
            return
        packet = self._channels.t_to_r.peek(info.packet_id)
        if isinstance(packet, DataPacket):
            # Index by the echoed challenge: if this exact value ever
            # reappears as a fresh challenge, this packet replays a message.
            self._data_packets_seen += 1
            self._index.setdefault(packet.rho, info)

    def _decide(self) -> Move:
        if self._phase == _Phase.HARVEST:
            if self._data_packets_seen >= self._harvest_target:
                self._phase = _Phase.CRASH_T
                # Freeze the arsenal: only packets archived BEFORE the
                # crash are replays; anything indexed later is just the
                # live protocol echoing the current challenge.
                self._frozen_index = dict(self._index)
            return self._faithful_move()
        if self._phase == _Phase.CRASH_T:
            self._phase = _Phase.CRASH_R
            return CRASH_TRANSMITTER
        if self._phase == _Phase.CRASH_R:
            self._phase = _Phase.SURGERY
            return CRASH_RECEIVER
        return self._surgery_move()

    def _surgery_move(self) -> Move:
        if self._strikes >= self._strike_budget:
            return self._faithful_move()
        self._strikes += 1
        challenge = self._read_current_challenge()
        if challenge is not None and self._frozen_index is not None:
            hit = self._frozen_index.get(challenge)
            if hit is not None:
                self.surgical_hits += 1
                if self.strikes_at_first_hit is None:
                    self.strikes_at_first_hit = self._strikes
                return make_deliver(hit.channel, hit.packet_id)
        # No archived packet matches the live challenge: provoke another
        # poll and read again.  (Against the real protocol this loops until
        # the budget runs out — the index simply never contains the value.)
        return TRIGGER_RETRY

    def _read_current_challenge(self) -> Optional[BitString]:
        """Peek the newest receiver poll for its challenge value."""
        if self._channels is None:
            return None
        ids = self._channels.r_to_t.all_packet_ids()
        if not ids:
            return None
        packet = self._channels.r_to_t.peek(ids[-1])
        if isinstance(packet, PollPacket):
            return packet.rho
        return None

    def _faithful_move(self) -> Move:
        if self._pending:
            info = self._pending.popleft()
            return make_deliver(info.channel, info.packet_id)
        return PASS

    def describe(self) -> str:
        return (
            f"content-aware-replay(indexed={len(self._index)}, "
            f"hits={self.surgical_hits}, phase={self._phase.value})"
        )
