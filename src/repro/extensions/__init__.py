"""Extensions beyond the paper's model — its Section 5 open problems.

* :mod:`repro.extensions.forgery` — channels that deliver packets never
  sent (the causality axiom dropped).  The paper conjectures its protocol
  keeps all safety conditions but loses liveness in this model; the
  forgery adversaries here demonstrate exactly that.
* :mod:`repro.extensions.content_aware` — adversaries that read packet
  contents (the obliviousness assumption dropped).  With causality intact,
  content awareness turns the Section 3 attack from probabilistic into
  surgical against fixed nonces, yet still fails against adaptive
  extension.
* :mod:`repro.extensions.striping` — a throughput extension: Axiom 1
  limits each link to one in-flight message, so this module stripes a
  message stream over K independent links and resequences at the far end.
"""

from repro.extensions.content_aware import ContentAwareReplayAttacker
from repro.extensions.forgery import (
    ForgeryLivenessAttacker,
    ForgingSimulator,
    InjectForgery,
    PktForged,
    RandomNoiseForger,
    RetryFloodAttacker,
)
from repro.extensions.striping import StripedLink, StripedSimulator

__all__ = [
    "ContentAwareReplayAttacker",
    "ForgeryLivenessAttacker",
    "ForgingSimulator",
    "InjectForgery",
    "PktForged",
    "RandomNoiseForger",
    "RetryFloodAttacker",
    "StripedLink",
    "StripedSimulator",
]
