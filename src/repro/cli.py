"""Command-line interface: drive the protocol and experiments from a shell.

The subcommands cover the common workflows::

    python -m repro simulate --messages 25 --loss 0.3 --duplicate 0.3 \\
        --reorder 0.5 --crash-rate 0.002 --epsilon-bits 16 --seed 7

    python -m repro attack --protocol fixed:5 --harvest 80 --runs 10
    python -m repro attack --protocol paper --harvest 80 --runs 10

    python -m repro sweep-loss --losses 0,0.2,0.4,0.6 --runs 5

    python -m repro campaign --runs 50 --jobs 4 --timeout 30 --retries 1 \\
        --fault-plan plan.json --artifacts-dir artifacts/

    python -m repro shrink --fault-plan artifacts/.../faultplan.json \\
        --seed 1234 --messages 40 --out minimal.json

    python -m repro campaign --runs 200 --jobs 4 --corrupt-rate 0.01

    python -m repro live --messages 50 --drop 0.08 --duplicate 0.05 \\
        --reorder 0.05 --fault-plan crashes.json --budget 45

    python -m repro live --messages 30 --corrupt T@12,R@30

    python -m repro bench --out BENCH_core.json
    python -m repro bench --quick --check BENCH_core.json

``simulate`` runs one execution of ``D(A, ADV)`` and prints metrics plus
the Section 2.6 checker verdicts; ``attack`` stages the Section 3
crash-then-replay attack against either the fixed-nonce strawman
(``fixed:<bits>``) or the real protocol (``paper``); ``sweep-loss``
reproduces the E7 cost curve; ``campaign`` runs a supervised,
fault-tolerant Monte-Carlo campaign with scripted fault injection and
failure forensics; ``shrink`` minimizes an archived failing repro;
``live`` deploys the stations as real asyncio UDP endpoints behind the
chaos proxy (docs/PROTOCOL.md §11); ``bench`` runs the streaming-engine
performance suite and enforces the regression gate against a committed
baseline.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.adversary.random_faults import FaultProfile, RandomFaultAdversary
from repro.adversary.replay import ReplayAttacker
from repro.analysis.bounds import expected_handshake_packets
from repro.baselines.naive_handshake import make_naive_handshake_link
from repro.checkers.safety import check_all_safety
from repro.core.exceptions import ConfigurationError
from repro.core.protocol import make_data_link
from repro.sim.runner import RunSpec, monte_carlo
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload
from repro.util.stats import wilson_interval
from repro.util.tables import render_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument grammar (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Goldreich-Herzberg-Mansour (PODC 1989) randomized data link: "
            "simulate, attack, and sweep."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one execution of D(A, ADV)")
    sim.add_argument("--messages", type=int, default=25)
    sim.add_argument("--epsilon-bits", type=int, default=16,
                     help="security parameter as epsilon = 2^-BITS")
    sim.add_argument("--loss", type=float, default=0.0)
    sim.add_argument("--duplicate", type=float, default=0.0)
    sim.add_argument("--reorder", type=float, default=0.0)
    sim.add_argument("--crash-rate", type=float, default=0.0,
                     help="per-turn crash probability for each station")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--max-steps", type=int, default=200_000)
    sim.add_argument("--engine", choices=["object", "kernel"], default="object",
                     help="execution engine: classic object loop or the "
                          "flat step kernel (identical executions)")

    atk = sub.add_parser("attack", help="stage the Section 3 replay attack")
    atk.add_argument("--protocol", default="paper",
                     help='"paper" or "fixed:<nonce-bits>"')
    atk.add_argument("--harvest", type=int, default=80)
    atk.add_argument("--rounds", type=int, default=6)
    atk.add_argument("--runs", type=int, default=10)
    atk.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser("sweep-loss", help="packets/message vs loss rate")
    sweep.add_argument("--losses", default="0,0.2,0.4,0.6",
                       help="comma-separated loss rates")
    sweep.add_argument("--runs", type=int, default=5)
    sweep.add_argument("--messages", type=int, default=20)
    sweep.add_argument("--epsilon-bits", type=int, default=16)

    relay = sub.add_parser(
        "sweep-relay",
        help="fail_rate x topology sweep over the relay fabric",
    )
    relay.add_argument("--topologies", default="line,ring,mesh",
                       help="comma-separated subset of line,ring,mesh")
    relay.add_argument("--fail-rates", default="0,0.01,0.05,0.1",
                       help="comma-separated per-step link failure rates")
    relay.add_argument("--runs", type=int, default=10,
                       help="campaign runs per (topology, fail_rate) cell")
    relay.add_argument("--messages", type=int, default=40)
    relay.add_argument("--jobs", type=int, default=2,
                       help="parallel worker processes per cell campaign")
    relay.add_argument("--engine", choices=["object", "kernel"],
                       default="kernel",
                       help="execution engine for every hop")
    relay.add_argument("--paths", type=int, default=1,
                       help="stripe frames over up to K disjoint routes")
    relay.add_argument("--base-seed", type=int, default=0)
    relay.add_argument("--markdown", action="store_true",
                       help="emit the grid as a GFM table (EXPERIMENTS.md)")

    scenario = sub.add_parser("scenario", help="run a named scenario")
    scenario.add_argument("name", nargs="?", default=None,
                          help="scenario name (omit to list all)")
    scenario.add_argument("--seed", type=int, default=0)

    camp = sub.add_parser(
        "campaign",
        help="supervised fault-tolerant Monte-Carlo campaign",
    )
    camp.add_argument("--runs", type=int, default=50)
    camp.add_argument("--jobs", "--workers", type=int, default=2, dest="jobs",
                      help="parallel worker processes")
    camp.add_argument("--chunk-size", type=int, default=None,
                      help="runs per dispatched shard (default: auto-size "
                           "to about four shards per worker)")
    camp.add_argument("--timeout", type=float, default=None,
                      help="per-run wall-clock budget in seconds")
    camp.add_argument("--retries", type=int, default=0,
                      help="extra attempts (fresh seeds) after timeout/crash")
    camp.add_argument("--artifacts-dir", default=None,
                      help="archive forensics for every non-ok run here")
    camp.add_argument("--fault-plan", default=None,
                      help="JSON fault plan to inject (see docs/PROTOCOL.md)")
    camp.add_argument("--protocol", default="paper",
                      help='"paper" or "fixed:<nonce-bits>"')
    camp.add_argument("--messages", type=int, default=20)
    camp.add_argument("--epsilon-bits", type=int, default=16,
                      help="epsilon = 2^-BITS (paper protocol only)")
    camp.add_argument("--loss", type=float, default=0.0)
    camp.add_argument("--duplicate", type=float, default=0.0)
    camp.add_argument("--reorder", type=float, default=0.0)
    camp.add_argument("--crash-rate", type=float, default=0.0)
    camp.add_argument("--corrupt-rate", type=float, default=0.0,
                      help="per-turn in-place state-corruption probability "
                           "for each station; enables stabilization "
                           "(convergence) verdicts")
    camp.add_argument("--corrupt-window", type=int, default=8,
                      help="clean progress events that end a corruption "
                           "probation window")
    camp.add_argument("--max-steps", type=int, default=200_000)
    camp.add_argument("--base-seed", type=int, default=0)
    camp.add_argument("--label", default="",
                      help="row label for the campaign tables")
    camp.add_argument("--retain", choices=["full", "tail", "none"],
                      default="tail",
                      help="trace retention per run: full event list, "
                           "forensic tail ring, or counters only")
    camp.add_argument("--tail-size", type=int, default=256,
                      help="ring-buffer size for --retain tail")
    camp.add_argument("--engine", choices=["object", "kernel"],
                      default="object",
                      help="execution engine for every run (identical "
                           "executions; kernel is several times faster)")
    _add_topology_options(camp)

    shr = sub.add_parser("shrink", help="minimize a failing repro (seed + plan)")
    shr.add_argument("--fault-plan", required=True,
                     help="JSON fault plan of the failing run")
    shr.add_argument("--seed", type=int, required=True,
                     help="the failing run's derived seed (meta.json: seed)")
    shr.add_argument("--messages", type=int, default=20,
                     help="the failing run's workload size")
    shr.add_argument("--run-index", type=int, default=0,
                     help="the failing run's campaign index")
    shr.add_argument("--protocol", default="paper")
    shr.add_argument("--epsilon-bits", type=int, default=16)
    shr.add_argument("--max-steps", type=int, default=200_000)
    shr.add_argument("--corrupt-rate", type=float, default=0.0,
                     help="match the failing campaign's --corrupt-rate so "
                          "probe runs replay its corruption schedule")
    shr.add_argument("--corrupt-window", type=int, default=8,
                     help="match the failing campaign's --corrupt-window")
    shr.add_argument("--timeout", type=float, default=5.0,
                     help="per-probe wall-clock bound in seconds")
    shr.add_argument("--max-probes", type=int, default=200)
    shr.add_argument("--out", default=None,
                     help="write the minimal fault plan JSON here")
    shr.add_argument("--engine", choices=["object", "kernel"],
                     default="object",
                     help="execution engine for probe runs (fabric only; "
                          "identical executions)")
    _add_topology_options(shr)

    live = sub.add_parser(
        "live",
        help="run the protocol over real UDP through the chaos proxy",
    )
    live.add_argument("--messages", type=int, default=50)
    live.add_argument("--seed", type=int, default=0)
    live.add_argument("--epsilon-bits", type=int, default=16,
                      help="security parameter as epsilon = 2^-BITS")
    live.add_argument("--drop", type=float, default=0.0,
                      help="per-datagram stochastic drop rate")
    live.add_argument("--duplicate", type=float, default=0.0,
                      help="per-datagram stochastic duplication rate")
    live.add_argument("--reorder", type=float, default=0.0,
                      help="per-datagram stochastic reorder rate")
    live.add_argument("--delay", type=float, default=0.0,
                      help="fixed one-way latency in seconds")
    live.add_argument("--jitter", type=float, default=0.0,
                      help="extra uniform latency in seconds")
    live.add_argument("--fault-plan", default=None,
                      help="scripted JSON fault plan (campaign schema; "
                           "turns count proxy-observed datagrams)")
    live.add_argument("--budget", type=float, default=60.0,
                      help="hard wall-clock ceiling in seconds")
    live.add_argument("--give-up", type=float, default=5.0,
                      help="no-progress deadline before UNRECONCILABLE")
    live.add_argument("--poll-base", type=float, default=0.01,
                      help="base poll retransmission delay in seconds")
    live.add_argument("--poll-cap", type=float, default=0.25,
                      help="poll backoff delay cap in seconds")
    live.add_argument("--poll-jitter", type=float, default=0.5,
                      help="poll backoff jitter fraction in [0, 1)")
    live.add_argument("--lanes", type=int, default=1,
                      help="protocol instances striped over the socket pair")
    live.add_argument("--corrupt", default=None,
                      help='in-place corruption triggers as STATION@TURN '
                           'items, e.g. "T@12,R@30" (turns count '
                           'proxy-observed datagrams)')
    live.add_argument("--corrupt-window", type=int, default=8,
                      help="clean progress events that end a corruption "
                           "probation window")
    live.add_argument("--restart-delay", type=float, default=0.02,
                      help="how long a crashed station stays down")
    live.add_argument("--wire", choices=("batched", "classic"),
                      default="batched",
                      help="datagram layer: batched drain/flush "
                           "(recvmmsg/sendmmsg where available) or the "
                           "classic per-datagram asyncio transports; "
                           "verdicts are identical either way")
    live.add_argument("--loop", choices=("asyncio", "uvloop", "auto"),
                      default="asyncio",
                      help="event loop backend; uvloop falls back to "
                           "asyncio when not installed (auto: use uvloop "
                           "if available)")
    live.add_argument("--label", default="", help="row label for the report")

    bench = sub.add_parser(
        "bench",
        help="run the streaming-engine perf suite; write/check BENCH_core.json",
    )
    bench.add_argument("--quick", action="store_true",
                       help="smaller workloads and run counts (CI smoke)")
    bench.add_argument("--out", default=None,
                       help="write the benchmark payload JSON here")
    bench.add_argument("--check", default=None,
                       help="baseline BENCH_core.json to gate against")
    bench.add_argument("--threshold", type=float, default=0.25,
                       help="allowed relative drop in the gated ratios")
    bench.add_argument("--base-seed", type=int, default=0)
    bench.add_argument("--only", choices=["all", "kernel", "relay"],
                       default="all",
                       help='"kernel" runs just the step-kernel speedup leg '
                            '(the CI kernel-differential job); "relay" runs '
                            "just the relay fabric legs (hop efficiency, "
                            "kernel engine, striping)")
    bench.add_argument("--profile", action="store_true",
                       help="run under cProfile; dump pstats next to --out "
                            "and print the top-25 cumulative table")

    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    link = make_data_link(epsilon=2.0 ** -args.epsilon_bits, seed=args.seed)
    adversary = RandomFaultAdversary(
        FaultProfile(
            loss=args.loss,
            duplicate=args.duplicate,
            reorder=args.reorder,
            crash_t=args.crash_rate,
            crash_r=args.crash_rate,
        )
    )
    simulator = Simulator(
        link,
        adversary,
        SequentialWorkload(args.messages),
        seed=args.seed,
        max_steps=args.max_steps,
        engine=getattr(args, "engine", "object"),
    )
    result = simulator.run()
    report = check_all_safety(result.trace)

    print(render_table(
        ["metric", "value"],
        [
            ["completed", result.completed],
            ["messages OK", f"{result.metrics.messages_ok}/{result.metrics.messages_submitted}"],
            ["packets sent", result.metrics.packets_sent],
            ["packets/message", result.metrics.per_message_packets],
            ["bits/message", result.metrics.per_message_bits],
            ["crashes (T/R)", f"{result.metrics.crashes_t}/{result.metrics.crashes_r}"],
            ["nonce extensions", result.metrics.transmitter_extensions
             + result.metrics.receiver_extensions],
            ["peak storage bits", result.metrics.storage_peak_bits],
            ["steps", result.steps],
        ],
        title="simulation",
    ))
    print()
    print(render_table(
        ["condition", "verdict", "trials"],
        [[c.condition, "OK" if c.passed else "VIOLATED", c.trials]
         for c in report.all_reports],
        title="Section 2.6 conditions",
    ))
    return 0 if (result.completed and report.passed) else 1


def _parse_protocol(spec: str):
    if spec == "paper":
        return lambda seed: make_data_link(epsilon=2.0 ** -12, seed=seed)
    if spec.startswith("fixed:"):
        bits = int(spec.split(":", 1)[1])
        return lambda seed: make_naive_handshake_link(nonce_bits=bits, seed=seed)
    raise SystemExit(f'unknown protocol {spec!r}: use "paper" or "fixed:<bits>"')


def _cmd_attack(args: argparse.Namespace) -> int:
    factory = _parse_protocol(args.protocol)
    broken = 0
    for run in range(args.runs):
        seed = args.seed + run
        link = factory(seed)
        attacker = ReplayAttacker(
            harvest_messages=args.harvest, replay_rounds=args.rounds
        )
        simulator = Simulator(
            link,
            attacker,
            SequentialWorkload(args.harvest * 3),
            seed=seed,
            max_steps=60_000,
        )
        result = simulator.run()
        report = check_all_safety(result.trace)
        if not (report.no_replay.passed and report.no_duplication.passed):
            broken += 1
    estimate = wilson_interval(broken, args.runs)
    print(render_table(
        ["protocol", "broken", "runs", "rate", "95% interval"],
        [[args.protocol, broken, args.runs, estimate.point,
          f"[{estimate.low:.3g}, {estimate.high:.3g}]"]],
        title="Section 3 crash-then-replay attack",
    ))
    return 0


def _cmd_sweep_loss(args: argparse.Namespace) -> int:
    losses = [float(x) for x in args.losses.split(",") if x.strip()]
    rows = []
    for loss in losses:
        spec = RunSpec(
            link_factory=lambda seed: make_data_link(
                epsilon=2.0 ** -args.epsilon_bits, seed=seed
            ),
            adversary_factory=lambda loss=loss: RandomFaultAdversary(
                FaultProfile(loss=loss)
            ),
            workload_factory=lambda seed: SequentialWorkload(args.messages),
            max_steps=300_000,
            label=f"loss={loss:g}",
        )
        mc = monte_carlo(spec, runs=args.runs, base_seed=int(loss * 1000))
        rows.append([
            spec.label,
            loss,
            mc.mean_packets_per_message,
            expected_handshake_packets(loss),
            mc.completion_rate,
        ])
    print(render_table(
        ["label", "loss", "pkts/msg", "analytic 2/(1-p)", "completion"],
        rows,
        title="packets per message vs loss",
    ))
    return 0


def _add_topology_options(parser: argparse.ArgumentParser) -> None:
    """Relay-fabric options shared by ``campaign`` and ``shrink``."""
    parser.add_argument("--topology", choices=["line", "ring", "mesh"],
                        default=None,
                        help="run the multi-hop relay fabric over this "
                             "topology instead of a single link: every edge "
                             "runs a full TM/RM instance, interior nodes are "
                             "bounded store-and-forward relays, and verdicts "
                             "are end-to-end (Section 2.6 over the "
                             "source->destination stream)")
    parser.add_argument("--topology-size", type=int, default=4,
                        help="hops (line), nodes (ring) or grid side (mesh)")
    parser.add_argument("--queue-limit", type=int, default=16,
                        help="bounded relay queue depth; overflow drops "
                             "frames (fabric only)")
    parser.add_argument("--e2e-window", type=int, default=4,
                        help="end-to-end pipeline window at the source "
                             "(fabric only)")
    parser.add_argument("--rto", type=int, default=64,
                        help="end-to-end retransmission timeout in fabric "
                             "ticks (fabric only)")
    parser.add_argument("--no-dedup", action="store_true",
                        help="ablation: disable the destination's "
                             "exactly-once dedup/resequencing layer; "
                             "retransmission races then reach the verdicts "
                             "(fabric only)")
    parser.add_argument("--paths", type=int, default=1,
                        help="stripe source frames over up to K "
                             "vertex-disjoint routes (Bunn-Ostrovsky "
                             "multi-path; fabric only, ring/mesh have "
                             "route diversity)")


def _fabric_spec(args: argparse.Namespace, messages: int):
    """Build the relay-fabric spec for ``campaign --topology`` / ``shrink``."""
    from repro.transport.fabric import FabricSpec

    return FabricSpec(
        topology=args.topology,
        size=args.topology_size,
        messages=messages,
        epsilon=2.0 ** -args.epsilon_bits,
        max_ticks=args.max_steps,
        queue_limit=args.queue_limit,
        window=args.e2e_window,
        rto=args.rto,
        exactly_once=not args.no_dedup,
        label=getattr(args, "label", "") or f"fabric-{args.topology}",
        retain=getattr(args, "retain", "none"),
        tail_size=getattr(args, "tail_size", 256),
        engine=getattr(args, "engine", "object"),
        paths=getattr(args, "paths", 1),
    )


def _campaign_link_factory(protocol: str, epsilon_bits: int):
    """Link factory for campaign/shrink: honors --epsilon-bits for "paper"."""
    if protocol == "paper":
        return lambda seed: make_data_link(epsilon=2.0 ** -epsilon_bits, seed=seed)
    return _parse_protocol(protocol)


def _campaign_spec(args: argparse.Namespace, messages: int) -> RunSpec:
    link_factory = _campaign_link_factory(args.protocol, args.epsilon_bits)
    rates = (
        getattr(args, "loss", 0.0),
        getattr(args, "duplicate", 0.0),
        getattr(args, "reorder", 0.0),
        getattr(args, "crash_rate", 0.0),
    )
    if any(rates):
        loss, duplicate, reorder, crash = rates
        adversary_factory = lambda: RandomFaultAdversary(FaultProfile(
            loss=loss, duplicate=duplicate, reorder=reorder,
            crash_t=crash, crash_r=crash,
        ))
    else:
        from repro.adversary.benign import ReliableAdversary

        adversary_factory = ReliableAdversary
    corrupt_rate = getattr(args, "corrupt_rate", 0.0)
    if corrupt_rate:
        from repro.adversary.corruption import StateCorruptionAdversary

        inner_factory = adversary_factory
        adversary_factory = lambda: StateCorruptionAdversary(
            rate_t=corrupt_rate, rate_r=corrupt_rate, inner=inner_factory()
        )
    return RunSpec(
        link_factory=link_factory,
        adversary_factory=adversary_factory,
        workload_factory=lambda seed: SequentialWorkload(messages),
        max_steps=args.max_steps,
        label=getattr(args, "label", "") or args.protocol,
        retain=getattr(args, "retain", "full"),
        tail_size=getattr(args, "tail_size", 256),
        stabilization=bool(corrupt_rate),
        stabilization_window=getattr(args, "corrupt_window", 8),
        engine=getattr(args, "engine", "object"),
    )


def _load_fault_plan(path: str):
    from repro.resilience.faultplan import FaultPlan

    try:
        return FaultPlan.load(path)
    except OSError as error:
        raise SystemExit(f"cannot read fault plan {path!r}: {error.strerror}")
    except ValueError as error:
        raise SystemExit(f"invalid fault plan {path!r}: {error}")


def _plan_wants_stabilization(plan) -> bool:
    """True when a loaded plan injects in-place (scramble) corruption."""
    from repro.resilience.faultplan import CorruptAt

    return plan is not None and any(
        isinstance(e, CorruptAt) and e.mode == "scramble" for e in plan.events
    )


def _parse_corrupt_triggers(spec: str, base_seed: int):
    """Compile ``"T@12,R@30"`` into seed-pinned :class:`CorruptAt` events."""
    from repro.core.random_source import split_seed
    from repro.resilience.faultplan import CorruptAt

    events = []
    for index, item in enumerate(x.strip() for x in spec.split(",")):
        if not item:
            continue
        station, _, turn_text = item.partition("@")
        try:
            turn = int(turn_text)
        except ValueError:
            raise SystemExit(
                f"bad --corrupt item {item!r}: use STATION@TURN, e.g. T@12"
            )
        try:
            events.append(
                CorruptAt(
                    step=turn,
                    station=station.strip().upper(),
                    seed=split_seed(base_seed, "live-corrupt", index),
                )
            )
        except ValueError as error:
            raise SystemExit(f"bad --corrupt item {item!r}: {error}")
    if not events:
        raise SystemExit("--corrupt given but no STATION@TURN items found")
    return events


def _cmd_sweep_relay(args: argparse.Namespace) -> int:
    from repro.resilience.relay_sweep import RelaySweepConfig, run_relay_sweep
    from repro.resilience.supervisor import CampaignConfig

    try:
        config = RelaySweepConfig(
            topologies=tuple(
                t.strip() for t in args.topologies.split(",") if t.strip()
            ),
            fail_rates=tuple(
                float(r) for r in args.fail_rates.split(",") if r.strip()
            ),
            runs=args.runs,
            messages=args.messages,
            engine=args.engine,
            paths=args.paths,
            base_seed=args.base_seed,
        )
        campaign = CampaignConfig(jobs=args.jobs)
    except (ConfigurationError, ValueError) as error:
        raise SystemExit(str(error))
    result = run_relay_sweep(config, campaign)
    print(result.to_markdown() if args.markdown else result.render())
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.resilience.supervisor import CampaignConfig, run_campaign

    plan = _load_fault_plan(args.fault_plan) if args.fault_plan else None
    try:
        config = CampaignConfig(
            jobs=args.jobs,
            timeout=args.timeout,
            retries=args.retries,
            artifacts_dir=args.artifacts_dir,
            chunk_size=args.chunk_size,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    if args.topology:
        try:
            spec = _fabric_spec(args, args.messages)
        except ConfigurationError as error:
            raise SystemExit(str(error))
    else:
        spec = _campaign_spec(args, args.messages)
        if _plan_wants_stabilization(plan) and not spec.stabilization:
            from dataclasses import replace

            spec = replace(
                spec, stabilization=True, stabilization_window=args.corrupt_window
            )
    result = run_campaign(
        spec, args.runs, base_seed=args.base_seed, config=config, fault_plan=plan
    )
    print(result.render())
    all_ok = all(r.status.value == "ok" for r in result.reports)
    return 0 if all_ok else 1


def _cmd_shrink(args: argparse.Namespace) -> int:
    from repro.resilience.shrink import shrink_repro

    plan = _load_fault_plan(args.fault_plan)
    needs_stabilization = _plan_wants_stabilization(plan)

    def spec_builder(messages: int):
        if args.topology:
            return _fabric_spec(args, messages)
        spec = _campaign_spec(args, messages)
        if needs_stabilization and not spec.stabilization:
            from dataclasses import replace

            spec = replace(
                spec,
                stabilization=True,
                stabilization_window=args.corrupt_window,
            )
        return spec

    try:
        result = shrink_repro(
            spec_builder,
            seed=args.seed,
            plan=plan,
            messages=args.messages,
            run_index=args.run_index,
            timeout=args.timeout,
            max_probes=args.max_probes,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    print(render_table(
        ["", "messages", "events", "status", "probes"],
        [
            ["original", result.original_messages, result.original_events,
             result.status.value, ""],
            ["minimal", result.messages, len(result.plan.events),
             result.status.value, result.probes],
        ],
        title="shrink",
    ))
    print()
    print(f"repro: seed={result.seed} messages={result.messages}")
    print(result.plan.to_json())
    if args.out:
        result.plan.save(args.out)
        print(f"minimal plan written to {args.out}")
    return 0


def _cmd_live(args: argparse.Namespace) -> int:
    from repro.live import BackoffPolicy, LinkProfile, LiveScenario, run_live_scenario
    from repro.resilience.faultplan import FaultPlan

    plan = _load_fault_plan(args.fault_plan) if args.fault_plan else None
    if args.corrupt:
        extra = _parse_corrupt_triggers(args.corrupt, args.seed)
        base = plan if plan is not None else FaultPlan()
        plan = FaultPlan(events=base.events + tuple(extra), label=base.label)
    try:
        scenario = LiveScenario(
            messages=args.messages,
            seed=args.seed,
            epsilon=2.0 ** -args.epsilon_bits,
            profile=LinkProfile(
                drop=args.drop,
                duplicate=args.duplicate,
                reorder=args.reorder,
                delay=args.delay,
                jitter=args.jitter,
            ),
            plan=plan if plan is not None else FaultPlan(),
            poll=BackoffPolicy(
                base=args.poll_base, cap=args.poll_cap, jitter=args.poll_jitter
            ),
            budget=args.budget,
            give_up_idle=args.give_up,
            restart_delay=args.restart_delay,
            lanes=args.lanes,
            stabilization_window=args.corrupt_window,
            wire=args.wire,
            label=args.label,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    report = run_live_scenario(scenario, loop=args.loop)
    print(report.render())
    if report.forensic_tail:
        print()
        print("forensic tail (most recent events):")
        for line in report.forensic_tail[-20:]:
            print(f"  {line}")
    return 0 if report.ok else 1


def _profiled_call(fn, out_path):
    """Run ``fn()`` under cProfile; dump pstats and print the hot table."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    profiler.dump_stats(out_path)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(25)
    print(f"profile written to {out_path}")
    print(buffer.getvalue())
    return result


def _render_kernel_table(kernel: dict) -> str:
    return render_table(
        ["workload", "object steps/sec", "kernel steps/sec", "speedup (median)"],
        [
            [workload,
             f"{stats['object_steps_per_second']:,.0f}",
             f"{stats['kernel_steps_per_second']:,.0f}",
             f"{stats['steps_speedup_median']:.2f}x"]
            for workload, stats in kernel.items()
        ],
        title="kernel benchmark (step kernel vs object engine, paired runs)",
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    from repro.perf.bench import (
        compare_payloads,
        dump,
        load,
        run_bench,
        run_kernel_bench,
        run_relay_bench,
    )

    if args.only == "kernel":
        runner = lambda: run_kernel_bench(
            quick=args.quick, base_seed=args.base_seed
        )
    elif args.only == "relay":
        runner = lambda: run_relay_bench(
            quick=args.quick, base_seed=args.base_seed
        )
    else:
        runner = lambda: run_bench(quick=args.quick, base_seed=args.base_seed)
    if args.profile:
        profile_path = (
            os.path.join(
                os.path.dirname(os.path.abspath(args.out)), "bench.pstats"
            )
            if args.out
            else "bench.pstats"
        )
        payload = _profiled_call(runner, profile_path)
    else:
        payload = runner()
    results = payload["results"]
    if "macro" in results:
        print(render_table(
            ["workload", "mode", "steps/sec", "events/sec", "checker overhead"],
            [
                [workload, mode,
                 f"{stats['steps_per_second']:,.0f}",
                 f"{stats['events_per_second']:,.0f}",
                 f"{stats['checker_overhead_ratio']:.1%}"]
                for workload, modes in results["macro"].items()
                for mode, stats in modes.items()
            ],
            title="macro benchmark (Monte-Carlo campaign path)",
        ))
        print()
    if "live" in results:
        live = results["live"]
        print(render_table(
            ["lanes", "messages/sec", "wall seconds", "reseq high-water"],
            [
                [stats["lanes"],
                 f"{stats['messages_per_second']:,.0f}",
                 f"{stats['wall_seconds']:.3f}",
                 stats["resequencer_high_water"]]
                for __, stats in sorted(
                    live.items(), key=lambda kv: kv[1]["lanes"]
                )
            ],
            title="live benchmark (loopback UDP, lossless profile)",
        ))
        print()
    if "live_wire" in results:
        live_wire = results["live_wire"]
        print(render_table(
            ["wire", "messages/sec", "wall seconds"],
            [
                [wire + (" (mmsg)" if stats.get("mmsg") else ""),
                 f"{stats['messages_per_second']:,.0f}",
                 f"{stats['wall_seconds']:.3f}"]
                for wire, stats in live_wire.items()
            ],
            title="live wire benchmark (isolated loopback pump, 8 lanes)",
        ))
        print()
    if "kernel" in results:
        print(_render_kernel_table(results["kernel"]))
        print()
    if "relay" in results:
        print(render_table(
            ["topology", "hops", "messages/sec", "ticks", "wall seconds"],
            [
                [leg, stats["hops"],
                 f"{stats['messages_per_second']:,.0f}",
                 stats["ticks"],
                 f"{stats['wall_seconds']:.3f}"]
                for leg, stats in sorted(results["relay"].items())
            ],
            title="relay fabric benchmark (end-to-end over per-hop TM/RM)",
        ))
        print()
    if "relay_kernel" in results:
        print(render_table(
            ["engine", "messages/sec", "ticks", "wall seconds"],
            [
                [engine,
                 f"{stats['messages_per_second']:,.0f}",
                 stats["ticks"],
                 f"{stats['wall_seconds']:.3f}"]
                for engine, stats in sorted(results["relay_kernel"].items())
            ],
            title="relay kernel benchmark (4-hop line, kernel vs object engine)",
        ))
        print()
    if "relay_stripe" in results:
        print(render_table(
            ["paths", "messages/sec", "ticks", "wall seconds"],
            [
                [stats["paths"],
                 f"{stats['messages_per_second']:,.0f}",
                 stats["ticks"],
                 f"{stats['wall_seconds']:.3f}"]
                for __, stats in sorted(results["relay_stripe"].items())
            ],
            title="relay striping benchmark (ring-8, protocol ticks to completion)",
        ))
        print()
    print(render_table(
        ["ratio", "value"],
        [[key, f"{value:.2f}"] for key, value in sorted(payload["ratios"].items())],
        title="gated ratios (within-run engine comparisons)",
    ))
    if args.out:
        existing = None
        if args.quick and os.path.exists(args.out):
            try:
                existing = load(args.out)
            except (OSError, ValueError):
                existing = None
        if existing is not None and not existing.get("quick", True):
            # A quick run must never clobber a committed full-run
            # baseline: the full ratios stay authoritative and the quick
            # payload rides along under its own key.
            existing["quick_smoke"] = payload
            dump(existing, args.out)
            print(
                f"\nquick payload merged into {args.out} under "
                f"'quick_smoke' (full-run baseline preserved)"
            )
        else:
            dump(payload, args.out)
            print(f"\nbenchmark payload written to {args.out}")
    if args.check:
        try:
            baseline = load(args.check)
        except OSError as error:
            raise SystemExit(
                f"cannot read baseline {args.check!r}: {error.strerror}"
            )
        failures, warnings = compare_payloads(
            payload, baseline, threshold=args.threshold
        )
        for warning in warnings:
            print(f"WARNING {warning}")
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}")
            return 1
        print(f"regression gate passed (threshold {args.threshold:.0%})")
    else:
        # Absolute floors gate even without a baseline to compare against.
        from repro.perf.bench import _floor_failures

        failures = _floor_failures(payload)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}")
            return 1
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.sim.scenarios import get_scenario, list_scenarios

    if args.name is None:
        print(render_table(
            ["scenario", "description"],
            [[s.name, s.description] for s in list_scenarios()],
            title="available scenarios",
        ))
        return 0
    try:
        scenario = get_scenario(args.name)
    except KeyError as error:
        raise SystemExit(str(error))
    outcome = scenario.run(seed=args.seed)
    sim = outcome.simulation
    print(render_table(
        ["metric", "value"],
        [
            ["scenario", scenario.name],
            ["completed", sim.completed],
            ["messages OK", f"{sim.metrics.messages_ok}/{sim.metrics.messages_submitted}"],
            ["packets/message", sim.metrics.per_message_packets],
            ["crashes (T/R)", f"{sim.metrics.crashes_t}/{sim.metrics.crashes_r}"],
            ["safety", "all OK" if outcome.safety.passed else "VIOLATED"],
        ],
        title=scenario.description,
    ))
    return 0 if outcome.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "attack":
        return _cmd_attack(args)
    if args.command == "sweep-loss":
        return _cmd_sweep_loss(args)
    if args.command == "sweep-relay":
        return _cmd_sweep_relay(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "shrink":
        return _cmd_shrink(args)
    if args.command == "live":
        return _cmd_live(args)
    if args.command == "bench":
        return _cmd_bench(args)
    raise SystemExit(f"unknown command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
