"""Command-line interface: drive the protocol and experiments from a shell.

Three subcommands cover the common workflows::

    python -m repro simulate --messages 25 --loss 0.3 --duplicate 0.3 \\
        --reorder 0.5 --crash-rate 0.002 --epsilon-bits 16 --seed 7

    python -m repro attack --protocol fixed:5 --harvest 80 --runs 10
    python -m repro attack --protocol paper --harvest 80 --runs 10

    python -m repro sweep-loss --losses 0,0.2,0.4,0.6 --runs 5

``simulate`` runs one execution of ``D(A, ADV)`` and prints metrics plus
the Section 2.6 checker verdicts; ``attack`` stages the Section 3
crash-then-replay attack against either the fixed-nonce strawman
(``fixed:<bits>``) or the real protocol (``paper``); ``sweep-loss``
reproduces the E7 cost curve.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.adversary.random_faults import FaultProfile, RandomFaultAdversary
from repro.adversary.replay import ReplayAttacker
from repro.analysis.bounds import expected_handshake_packets
from repro.baselines.naive_handshake import make_naive_handshake_link
from repro.checkers.safety import check_all_safety
from repro.core.protocol import make_data_link
from repro.sim.runner import RunSpec, monte_carlo
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload
from repro.util.stats import wilson_interval
from repro.util.tables import render_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument grammar (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Goldreich-Herzberg-Mansour (PODC 1989) randomized data link: "
            "simulate, attack, and sweep."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one execution of D(A, ADV)")
    sim.add_argument("--messages", type=int, default=25)
    sim.add_argument("--epsilon-bits", type=int, default=16,
                     help="security parameter as epsilon = 2^-BITS")
    sim.add_argument("--loss", type=float, default=0.0)
    sim.add_argument("--duplicate", type=float, default=0.0)
    sim.add_argument("--reorder", type=float, default=0.0)
    sim.add_argument("--crash-rate", type=float, default=0.0,
                     help="per-turn crash probability for each station")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--max-steps", type=int, default=200_000)

    atk = sub.add_parser("attack", help="stage the Section 3 replay attack")
    atk.add_argument("--protocol", default="paper",
                     help='"paper" or "fixed:<nonce-bits>"')
    atk.add_argument("--harvest", type=int, default=80)
    atk.add_argument("--rounds", type=int, default=6)
    atk.add_argument("--runs", type=int, default=10)
    atk.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser("sweep-loss", help="packets/message vs loss rate")
    sweep.add_argument("--losses", default="0,0.2,0.4,0.6",
                       help="comma-separated loss rates")
    sweep.add_argument("--runs", type=int, default=5)
    sweep.add_argument("--messages", type=int, default=20)
    sweep.add_argument("--epsilon-bits", type=int, default=16)

    scenario = sub.add_parser("scenario", help="run a named scenario")
    scenario.add_argument("name", nargs="?", default=None,
                          help="scenario name (omit to list all)")
    scenario.add_argument("--seed", type=int, default=0)

    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    link = make_data_link(epsilon=2.0 ** -args.epsilon_bits, seed=args.seed)
    adversary = RandomFaultAdversary(
        FaultProfile(
            loss=args.loss,
            duplicate=args.duplicate,
            reorder=args.reorder,
            crash_t=args.crash_rate,
            crash_r=args.crash_rate,
        )
    )
    simulator = Simulator(
        link,
        adversary,
        SequentialWorkload(args.messages),
        seed=args.seed,
        max_steps=args.max_steps,
    )
    result = simulator.run()
    report = check_all_safety(result.trace)

    print(render_table(
        ["metric", "value"],
        [
            ["completed", result.completed],
            ["messages OK", f"{result.metrics.messages_ok}/{result.metrics.messages_submitted}"],
            ["packets sent", result.metrics.packets_sent],
            ["packets/message", result.metrics.per_message_packets],
            ["bits/message", result.metrics.per_message_bits],
            ["crashes (T/R)", f"{result.metrics.crashes_t}/{result.metrics.crashes_r}"],
            ["nonce extensions", result.metrics.transmitter_extensions
             + result.metrics.receiver_extensions],
            ["peak storage bits", result.metrics.storage_peak_bits],
            ["steps", result.steps],
        ],
        title="simulation",
    ))
    print()
    print(render_table(
        ["condition", "verdict", "trials"],
        [[c.condition, "OK" if c.passed else "VIOLATED", c.trials]
         for c in report.all_reports],
        title="Section 2.6 conditions",
    ))
    return 0 if (result.completed and report.passed) else 1


def _parse_protocol(spec: str):
    if spec == "paper":
        return lambda seed: make_data_link(epsilon=2.0 ** -12, seed=seed)
    if spec.startswith("fixed:"):
        bits = int(spec.split(":", 1)[1])
        return lambda seed: make_naive_handshake_link(nonce_bits=bits, seed=seed)
    raise SystemExit(f'unknown protocol {spec!r}: use "paper" or "fixed:<bits>"')


def _cmd_attack(args: argparse.Namespace) -> int:
    factory = _parse_protocol(args.protocol)
    broken = 0
    for run in range(args.runs):
        seed = args.seed + run
        link = factory(seed)
        attacker = ReplayAttacker(
            harvest_messages=args.harvest, replay_rounds=args.rounds
        )
        simulator = Simulator(
            link,
            attacker,
            SequentialWorkload(args.harvest * 3),
            seed=seed,
            max_steps=60_000,
        )
        result = simulator.run()
        report = check_all_safety(result.trace)
        if not (report.no_replay.passed and report.no_duplication.passed):
            broken += 1
    estimate = wilson_interval(broken, args.runs)
    print(render_table(
        ["protocol", "broken", "runs", "rate", "95% interval"],
        [[args.protocol, broken, args.runs, estimate.point,
          f"[{estimate.low:.3g}, {estimate.high:.3g}]"]],
        title="Section 3 crash-then-replay attack",
    ))
    return 0


def _cmd_sweep_loss(args: argparse.Namespace) -> int:
    losses = [float(x) for x in args.losses.split(",") if x.strip()]
    rows = []
    for loss in losses:
        spec = RunSpec(
            link_factory=lambda seed: make_data_link(
                epsilon=2.0 ** -args.epsilon_bits, seed=seed
            ),
            adversary_factory=lambda loss=loss: RandomFaultAdversary(
                FaultProfile(loss=loss)
            ),
            workload_factory=lambda seed: SequentialWorkload(args.messages),
            max_steps=300_000,
        )
        mc = monte_carlo(spec, runs=args.runs, base_seed=int(loss * 1000))
        rows.append([
            loss,
            mc.mean_packets_per_message,
            expected_handshake_packets(loss),
            mc.completion_rate,
        ])
    print(render_table(
        ["loss", "pkts/msg", "analytic 2/(1-p)", "completion"],
        rows,
        title="packets per message vs loss",
    ))
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.sim.scenarios import get_scenario, list_scenarios

    if args.name is None:
        print(render_table(
            ["scenario", "description"],
            [[s.name, s.description] for s in list_scenarios()],
            title="available scenarios",
        ))
        return 0
    try:
        scenario = get_scenario(args.name)
    except KeyError as error:
        raise SystemExit(str(error))
    outcome = scenario.run(seed=args.seed)
    sim = outcome.simulation
    print(render_table(
        ["metric", "value"],
        [
            ["scenario", scenario.name],
            ["completed", sim.completed],
            ["messages OK", f"{sim.metrics.messages_ok}/{sim.metrics.messages_submitted}"],
            ["packets/message", sim.metrics.per_message_packets],
            ["crashes (T/R)", f"{sim.metrics.crashes_t}/{sim.metrics.crashes_r}"],
            ["safety", "all OK" if outcome.safety.passed else "VIOLATED"],
        ],
        title=scenario.description,
    ))
    return 0 if outcome.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "attack":
        return _cmd_attack(args)
    if args.command == "sweep-loss":
        return _cmd_sweep_loss(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    raise SystemExit(f"unknown command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
